"""Structured MR rounds: array-native reducers executed as segment reductions.

The classic engine path (:meth:`~repro.mapreduce.engine.MREngine.run_round`)
invokes one Python callable per key, which is exactly the per-pair /
per-key object cost the paper's linear-communication algorithms are supposed
to avoid.  A *structured round* replaces the callable with a declarative
:class:`StructuredReducer` drawn from a registry (``min``, ``max``, ``sum``,
``count``, ``first``, ``argmin``, ``bitwise_or``, or a custom registration)
that every backend knows how to execute over an unflattened
:class:`~repro.mapreduce.backends.ArrayPairs` batch:

``serial``
    Flattens the batch to per-pair Python tuples and runs the reducer's
    :meth:`~StructuredReducer.reference` callable through the dict shuffle —
    the *tuple path*, kept as the bit-compatibility reference (and as the
    slow side of the structured-vs-tuple benchmark gates).

``vectorized``
    Groups with one stable ``argsort`` over the key array and evaluates the
    reducer with ``np.<ufunc>.reduceat``-style *segment reductions*
    (:meth:`~StructuredReducer.segment_reduce`) — zero per-key Python calls.

``process``
    Shards the key/value *arrays* by ``keys % num_shards`` (array masks, no
    per-pair tuples), runs the segment reduction per shard in a pool worker,
    and merges the emitted groups back into first-occurrence order.  Rounds
    of at least ``shm_min_pairs`` pairs travel over the zero-copy
    shared-memory data plane of :mod:`repro.mapreduce.shm`: the sorted
    key/value arrays are published once into shared segments, workers slice
    contiguous per-shard views from descriptors, and winner rows land in a
    preallocated shared output segment — no pickled arrays in either
    direction.

All three produce bit-identical :class:`StructuredOutcome`\\ s — same output
arrays in the same (first-occurrence) order, same counters — so the metered
``MRMetrics`` never depend on the execution strategy.  (One carve-out: the
``sum`` reducer requires group sums to fit the value dtype — integer
overflow wraps on the segment path but not in exact Python arithmetic, so
overflowing workloads are outside the contract.)  Map phases emit
``ArrayPairs`` directly via the :class:`ArrayMapper` protocol (e.g. frontier
claim expansion is one ``np.repeat``/gather over the CSR arrays, reusing the
:mod:`repro.graph.kernels` primitives).

Registering a custom segment reducer::

    class MyReducer(StructuredReducer):
        name = "my-reducer"
        def segment_reduce(self, sorted_values, starts, ends): ...
        def reference(self, key, values): ...

    register_structured_reducer(MyReducer())
    engine.run_structured_round(batch, "my-reducer")

Passing a plain callable to ``run_structured_round`` engages the escape
hatch: the round is executed through the classic per-key callable machinery
(still grouped with the backend's shuffle) and the output is converted back
to arrays, so unported reducers keep working unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.mapreduce.backends import ArrayPairs

Key = Hashable
Value = object
Pair = Tuple[Key, Value]
Reducer = Callable[[Key, List[Value]], Iterable[Pair]]

__all__ = [
    "StructuredOutcome",
    "StructuredReducer",
    "CallableReducer",
    "ArrayMapper",
    "register_structured_reducer",
    "get_structured_reducer",
    "available_structured_reducers",
    "resolve_structured_reducer",
    "apply_array_mapper",
    "execute_reference",
    "execute_segments",
    "grouping_order",
    "segment_eligible",
    "reduce_structured_shard",
    "merge_shard_groups",
    "outcome_from_round",
]

# Key-array dtypes a structured round can group with one argsort: integers,
# unsigned, booleans, fixed-width strings/bytes, and floats (NaN-free — the
# caller checks, since NaN breaks grouping-by-equality).
_SEGMENT_KEY_KINDS = frozenset("iubUSf")


@dataclass(frozen=True)
class StructuredOutcome:
    """What a backend reports after executing one structured shuffle+reduce.

    The array-native analogue of
    :class:`~repro.mapreduce.backends.RoundOutcome`: ``output`` is an
    :class:`ArrayPairs` batch (groups in first-occurrence order of their
    key), the counters are the same metered quantities.
    """

    output: ArrayPairs
    pairs_shuffled: int
    max_reducer_input: int


class ArrayMapper:
    """Protocol for map phases that emit :class:`ArrayPairs` directly.

    A structured mapper transforms one unflattened batch into another with
    whole-array operations (gathers, ``np.repeat``, ``np.column_stack``) —
    never per-pair Python objects.  Any object with a compatible
    ``map_batch`` (or any plain ``ArrayPairs -> ArrayPairs`` callable) is
    accepted by :meth:`MREngine.run_structured_round`; subclassing is
    optional and only buys isinstance checks.
    """

    def map_batch(self, batch: ArrayPairs) -> ArrayPairs:  # pragma: no cover - interface
        raise NotImplementedError


def apply_array_mapper(
    mapper: Union[ArrayMapper, Callable[[ArrayPairs], ArrayPairs], None],
    batch: ArrayPairs,
) -> ArrayPairs:
    """Run an :class:`ArrayMapper` (or a bare callable) over ``batch``."""
    if mapper is None:
        return batch
    if hasattr(mapper, "map_batch"):
        return mapper.map_batch(batch)
    return mapper(batch)


# --------------------------------------------------------------------------- #
# Reducer vocabulary
# --------------------------------------------------------------------------- #
class StructuredReducer(ABC):
    """A reducer the backends can evaluate without per-key Python calls.

    Implementations provide two semantically identical evaluations:

    * :meth:`segment_reduce` — the array fast path: given the value rows
      sorted by key and the segment boundaries of each group, produce one
      reduced row per group (plus an optional emit mask for reducers that
      drop groups); and
    * :meth:`reference` — the per-key tuple-path callable with the exact
      same semantics, used by the serial backend and by the escape-hatch /
      fallback paths.  Bit-compatibility between the two is what the
      cross-backend equivalence suite enforces.

    ``values_ndim`` restricts the accepted value-array rank (``None`` = any);
    violating it raises ``ValueError`` identically on every backend.
    """

    name: str = "abstract"
    #: Required rank of the values array (1 = scalars, 2 = rows); None = any.
    values_ndim: Optional[int] = None

    @abstractmethod
    def segment_reduce(
        self, sorted_values: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Reduce each segment ``sorted_values[starts[i]:ends[i]]``.

        Returns ``(rows, emit_mask)`` where ``rows`` holds one reduced value
        per segment and ``emit_mask`` (or ``None`` for all-emit) selects the
        groups that produce output.
        """

    @abstractmethod
    def reference(self, key: Key, values: List[Value]) -> Iterable[Pair]:
        """Tuple-path callable with semantics identical to the segment path."""

    # ------------------------------------------------------------------ #
    def result_dtype(self, values: np.ndarray) -> np.dtype:
        """Dtype of the output value array (defaults to the input dtype)."""
        return values.dtype

    def result_row_shape(self, values: np.ndarray) -> Tuple[int, ...]:
        """Trailing shape of one output value (defaults to the input row)."""
        return values.shape[1:]

    def validate_values(self, values: np.ndarray) -> None:
        """Reject value arrays this reducer cannot evaluate (all backends)."""
        if self.values_ndim is not None and values.ndim != self.values_ndim:
            raise ValueError(
                f"structured reducer {self.name!r} requires a "
                f"{self.values_ndim}-d values array, got ndim={values.ndim}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class CallableReducer(StructuredReducer):
    """Escape hatch: wrap an arbitrary per-key callable as a structured reducer.

    The wrapped callable runs through the classic per-key machinery on every
    backend (the vectorized backend still groups with its argsort shuffle but
    invokes Python per group), so correctness never depends on a segment
    implementation existing.
    """

    name = "callable"
    supports_segments = False

    def __init__(self, func: Reducer) -> None:
        self.func = func

    def segment_reduce(self, sorted_values, starts, ends):  # pragma: no cover
        raise NotImplementedError("CallableReducer has no segment fast path")

    def reference(self, key, values):
        return self.func(key, values)


class _MinReducer(StructuredReducer):
    name = "min"
    values_ndim = 1

    def segment_reduce(self, sorted_values, starts, ends):
        return np.minimum.reduceat(sorted_values, starts), None

    def reference(self, key, values):
        yield (key, min(values))


class _MaxReducer(StructuredReducer):
    name = "max"
    values_ndim = 1

    def segment_reduce(self, sorted_values, starts, ends):
        return np.maximum.reduceat(sorted_values, starts), None

    def reference(self, key, values):
        yield (key, max(values))


class _SumReducer(StructuredReducer):
    """Per-group sum.  Group sums must fit the value dtype: the segment path
    wraps on int64/uint64 overflow (NumPy semantics) while the tuple path
    sums exactly in Python and then fails to convert, so workloads whose sums
    overflow are outside the bit-compatibility contract."""

    name = "sum"
    values_ndim = 1

    def segment_reduce(self, sorted_values, starts, ends):
        return np.add.reduceat(sorted_values, starts), None

    def reference(self, key, values):
        yield (key, sum(values))


class _CountReducer(StructuredReducer):
    name = "count"

    def segment_reduce(self, sorted_values, starts, ends):
        return (ends - starts).astype(np.int64), None

    def reference(self, key, values):
        yield (key, len(values))

    def result_dtype(self, values):
        return np.dtype(np.int64)

    def result_row_shape(self, values):
        return ()


class _FirstReducer(StructuredReducer):
    name = "first"

    def segment_reduce(self, sorted_values, starts, ends):
        # The stable key sort keeps arrival order within a group, so the
        # segment head is the first-arriving value — dict semantics.
        return sorted_values[starts], None

    def reference(self, key, values):
        yield (key, values[0])


class _ArgminReducer(StructuredReducer):
    """Keep, per group, the lexicographically smallest composite-key row.

    Values are 2-d rows; the winner is the row minimizing
    ``(row[0], row[1], ...)``, ties resolved by arrival order — exactly
    ``min(values)`` over the flattened row lists.
    """

    name = "argmin"
    values_ndim = 2

    def segment_reduce(self, sorted_values, starts, ends):
        segment_ids = np.repeat(np.arange(starts.size), ends - starts)
        # lexsort: last key is primary — segment first, then columns left to
        # right; the stable sort keeps arrival order among tied rows.
        keys = tuple(sorted_values[:, c] for c in range(sorted_values.shape[1] - 1, -1, -1))
        order = np.lexsort(keys + (segment_ids,))
        return sorted_values[order[starts]], None

    def reference(self, key, values):
        yield (key, min(values))


class _BitwiseOrReducer(StructuredReducer):
    """Bitwise OR of every value in the group (HADI/ANF sketch merging)."""

    name = "bitwise_or"

    def segment_reduce(self, sorted_values, starts, ends):
        return np.bitwise_or.reduceat(sorted_values, starts, axis=0), None

    def reference(self, key, values):
        merged = values[0]
        for value in values[1:]:
            if isinstance(merged, (list, tuple)):
                merged = [a | b for a, b in zip(merged, value)]
            else:
                merged = merged | value
        yield (key, merged)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, StructuredReducer] = {}


def register_structured_reducer(reducer: StructuredReducer, *, overwrite: bool = False) -> StructuredReducer:
    """Add ``reducer`` to the registry under ``reducer.name``.

    Custom reducers must be module-level classes (the process backend ships
    them to pool workers by pickling).  Returns the reducer for chaining.
    """
    if not isinstance(reducer, StructuredReducer):
        raise TypeError(f"expected a StructuredReducer, got {type(reducer).__name__}")
    if not overwrite and reducer.name in _REGISTRY:
        raise ValueError(f"structured reducer {reducer.name!r} already registered")
    _REGISTRY[reducer.name] = reducer
    return reducer


def get_structured_reducer(name: str) -> StructuredReducer:
    """Look up a registered reducer by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown structured reducer {name!r}; available: {available_structured_reducers()}"
        ) from None


def available_structured_reducers() -> List[str]:
    """Sorted names accepted by :func:`get_structured_reducer`."""
    return sorted(_REGISTRY)


def resolve_structured_reducer(
    spec: Union[str, StructuredReducer, Reducer],
) -> StructuredReducer:
    """Resolve a name / instance / plain callable to a :class:`StructuredReducer`."""
    if isinstance(spec, StructuredReducer):
        return spec
    if isinstance(spec, str):
        return get_structured_reducer(spec)
    if callable(spec):
        return CallableReducer(spec)
    raise TypeError(f"cannot resolve {spec!r} to a structured reducer")


for _reducer in (
    _MinReducer(),
    _MaxReducer(),
    _SumReducer(),
    _CountReducer(),
    _FirstReducer(),
    _ArgminReducer(),
    _BitwiseOrReducer(),
):
    register_structured_reducer(_reducer)


# --------------------------------------------------------------------------- #
# Execution strategies
# --------------------------------------------------------------------------- #
def segment_eligible(keys: np.ndarray) -> bool:
    """True when the key array can be grouped with one stable argsort."""
    if keys.dtype.kind not in _SEGMENT_KEY_KINDS:
        return False
    if keys.dtype.kind == "f" and bool(np.isnan(keys).any()):
        return False
    return True


def _empty_outcome(mapped: ArrayPairs, reducer: StructuredReducer) -> StructuredOutcome:
    keys = np.zeros(0, dtype=mapped.keys.dtype)
    values = np.zeros(
        (0,) + reducer.result_row_shape(mapped.values), dtype=reducer.result_dtype(mapped.values)
    )
    return StructuredOutcome(ArrayPairs(keys, values), 0, 0)


def execute_reference(mapped: ArrayPairs, reducer: StructuredReducer) -> StructuredOutcome:
    """The tuple path: flatten to per-pair tuples, dict shuffle, per-key calls.

    This is the bit-compatibility reference every other strategy is tested
    against — it deliberately pays the per-pair Python-object cost the
    structured fast paths exist to avoid.
    """
    reducer.validate_values(mapped.values)
    if len(mapped) == 0:
        return _empty_outcome(mapped, reducer)
    groups: Dict[Key, List[Value]] = {}
    for key, value in mapped.to_pairs():
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [value]
        else:
            bucket.append(value)
    max_input = max(len(bucket) for bucket in groups.values())
    out_keys: List[Key] = []
    out_values: List[Value] = []
    for key, bucket in groups.items():
        for out_key, out_value in reducer.reference(key, bucket):
            out_keys.append(out_key)
            out_values.append(out_value)
    if not out_keys:
        outcome = _empty_outcome(mapped, reducer)
        return StructuredOutcome(outcome.output, len(mapped), max_input)
    keys_array = np.asarray(out_keys, dtype=mapped.keys.dtype)
    values_array = np.asarray(out_values, dtype=reducer.result_dtype(mapped.values))
    return StructuredOutcome(ArrayPairs(keys_array, values_array), len(mapped), max_input)


def grouping_order(keys: np.ndarray) -> np.ndarray:
    """Stable permutation sorting ``keys`` (the shuffle's grouping pass).

    Semantically ``np.argsort(keys, kind="stable")``, with two much faster
    routes for the integer node-id keys every MR driver uses: a radix argsort
    when the key range fits 16 bits, and otherwise a pack-sort — key in the
    high bits, position in the low bits of one int64, sorted with an unstable
    C quicksort (the embedded position makes the order stable by
    construction).  Both return the identical permutation.
    """
    n = keys.size
    if n > 1 and keys.dtype.kind in "iu":
        lo = int(keys.min())
        hi = int(keys.max())
        if hi - lo < (1 << 16):
            return np.argsort((keys - lo).astype(np.uint16), kind="stable")
        index_bits = max(1, (n - 1).bit_length())
        if lo >= 0 and hi.bit_length() + index_bits <= 63:
            packed = (keys.astype(np.int64) << index_bits) | np.arange(n, dtype=np.int64)
            packed.sort()
            return packed & ((np.int64(1) << index_bits) - np.int64(1))
    return np.argsort(keys, kind="stable")


def _segment_groups(
    keys: np.ndarray, values: np.ndarray, reducer: StructuredReducer, global_indices: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Group+reduce one key/value array pair with segment reductions.

    Returns ``(first_occurrence, group_keys, rows, max_input)`` restricted to
    the emitting groups; ``first_occurrence`` is expressed in the caller's
    index space (``global_indices`` when sharded, local positions otherwise).
    """
    order = grouping_order(keys)
    sorted_keys = keys[order]
    boundary = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], boundary))
    ends = np.concatenate((boundary, [sorted_keys.size]))
    max_input = int((ends - starts).max())
    rows, emit = reducer.segment_reduce(values[order], starts, ends)
    first_occurrence = order[starts]
    if global_indices is not None:
        first_occurrence = global_indices[first_occurrence]
    group_keys = sorted_keys[starts]
    if emit is not None:
        first_occurrence = first_occurrence[emit]
        group_keys = group_keys[emit]
        rows = rows[emit]
    return first_occurrence, group_keys, rows, max_input


def execute_segments(mapped: ArrayPairs, reducer: StructuredReducer) -> StructuredOutcome:
    """The array fast path: one stable argsort + pure segment reductions.

    Falls back to :func:`execute_reference` when the key array cannot be
    argsort-grouped (object dtype, NaN floats) so the call never fails where
    the serial backend would succeed.
    """
    reducer.validate_values(mapped.values)
    if len(mapped) == 0:
        return _empty_outcome(mapped, reducer)
    if not segment_eligible(mapped.keys):
        return execute_reference(mapped, reducer)
    first_occurrence, group_keys, rows, max_input = _segment_groups(
        mapped.keys, mapped.values, reducer, None
    )
    # First-occurrence indices are distinct, so an unstable sort suffices.
    emit_order = np.argsort(first_occurrence)
    output = ArrayPairs(group_keys[emit_order], rows[emit_order])
    return StructuredOutcome(output, len(mapped), max_input)


def reduce_structured_shard(
    task: Tuple[StructuredReducer, np.ndarray, np.ndarray, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Group+reduce one shard; runs inside a pool worker (or in-process).

    ``task`` is ``(reducer, keys, values, global_indices)``; the returned
    first-occurrence indices are global so the driver can interleave groups
    from all shards back into first-occurrence order.
    """
    reducer, keys, values, global_indices = task
    return _segment_groups(keys, values, reducer, global_indices)


def outcome_from_round(outcome) -> StructuredOutcome:
    """Convert a classic :class:`RoundOutcome` (pair list) back to arrays.

    Used by the callable escape hatch: every backend runs the wrapped
    callable through its own classic shuffle (producing identical pair
    lists), so converting with plain ``np.asarray`` inference yields
    identical arrays on every backend.
    """
    if not outcome.output:
        return StructuredOutcome(
            ArrayPairs(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)),
            outcome.pairs_shuffled,
            outcome.max_reducer_input,
        )
    keys, values = zip(*outcome.output)
    return StructuredOutcome(
        ArrayPairs(np.asarray(keys), np.asarray(values)),
        outcome.pairs_shuffled,
        outcome.max_reducer_input,
    )


def merge_shard_groups(
    mapped: ArrayPairs,
    reducer: StructuredReducer,
    results: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, int]],
) -> StructuredOutcome:
    """Merge per-shard groups back into global first-occurrence order."""
    max_input = max((result[3] for result in results), default=0)
    if not results:
        outcome = _empty_outcome(mapped, reducer)
        return StructuredOutcome(outcome.output, len(mapped), max_input)
    first = np.concatenate([result[0] for result in results])
    keys = np.concatenate([result[1] for result in results])
    rows = np.concatenate([result[2] for result in results])
    if first.size == 0:
        outcome = _empty_outcome(mapped, reducer)
        return StructuredOutcome(outcome.output, len(mapped), max_input)
    # First-occurrence indices are distinct, so an unstable sort suffices.
    emit_order = np.argsort(first)
    return StructuredOutcome(ArrayPairs(keys[emit_order], rows[emit_order]), len(mapped), max_input)
