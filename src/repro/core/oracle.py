"""Linear-space approximate distance oracle (end of Section 4).

Running CLUSTER2(τ) with ``τ = O(sqrt(n) / log⁴ n)`` produces ``O(sqrt(n))``
clusters; storing the all-pairs shortest-path matrix of the weighted quotient
graph then takes ``O(n)`` space and yields, for every pair of nodes ``(u, v)``,
an upper bound

    d'(u, v) = dist(u, c_u) + dist_{G_C}(C_u, C_v) + dist(v, c_v)

that is within ``O(d(u, v) log³ n + R_ALG2)`` of the true distance — i.e. a
polylogarithmic approximation for pairs that are far apart (distance
``Ω(R_ALG2)``).  The oracle also returns the trivial lower bound given by the
unweighted quotient hop distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.cluster import cluster
from repro.core.cluster2 import cluster2
from repro.core.clustering import Clustering
from repro.core.quotient import build_quotient_graph, quotient_diameter
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_node_index

__all__ = ["DistanceOracle", "build_distance_oracle"]


def _all_pairs_matrix(quotient, weighted: bool) -> np.ndarray:
    """All-pairs shortest-path matrix of a (small) quotient graph."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    n = quotient.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    data = (
        quotient.weights
        if (weighted and quotient.weights is not None)
        else np.ones(quotient.graph.indices.size, dtype=np.float64)
    )
    matrix = csr_matrix((data, quotient.graph.indices, quotient.graph.indptr), shape=(n, n))
    return shortest_path(matrix, method="D", directed=False, unweighted=not weighted)


@dataclass
class DistanceOracle:
    """Approximate distance oracle built on a clustering.

    Space usage: ``O(n)`` for the per-node cluster id / center distance plus
    ``O(k²)`` for the quotient APSP matrices, which is ``O(n)`` overall for
    ``k = O(sqrt(n))`` clusters.
    """

    clustering: Clustering
    upper_matrix: np.ndarray
    lower_matrix: np.ndarray

    @property
    def num_clusters(self) -> int:
        return self.clustering.num_clusters

    @property
    def space_entries(self) -> int:
        """Number of stored matrix entries plus per-node words (space accounting)."""
        return int(self.upper_matrix.size + self.lower_matrix.size + 2 * self.clustering.num_nodes)

    def query(self, u: int, v: int) -> Tuple[float, float]:
        """Return ``(lower_bound, upper_bound)`` on ``dist_G(u, v)``.

        The lower bound is the unweighted quotient hop distance between the
        two clusters; the upper bound routes through the two cluster centers
        and the weighted quotient graph.  For nodes in the same cluster the
        upper bound is ``dist(u, c) + dist(v, c)`` and the lower bound is 0
        (or exactly 0 when ``u == v``).
        """
        n = self.clustering.num_nodes
        ui = check_node_index(u, n, "u")
        vi = check_node_index(v, n, "v")
        if ui == vi:
            return 0.0, 0.0
        cu = int(self.clustering.assignment[ui])
        cv = int(self.clustering.assignment[vi])
        du = float(self.clustering.distance[ui])
        dv = float(self.clustering.distance[vi])
        if cu == cv:
            return (1.0, du + dv) if du + dv > 0 else (1.0, 1.0)
        lower = float(self.lower_matrix[cu, cv])
        upper = du + float(self.upper_matrix[cu, cv]) + dv
        return lower, upper

    def query_upper(self, u: int, v: int) -> float:
        """Upper bound only (convenience wrapper)."""
        return self.query(u, v)[1]


def build_distance_oracle(
    graph: CSRGraph,
    *,
    tau: Optional[int] = None,
    seed: SeedLike = None,
    use_cluster2: bool = True,
) -> DistanceOracle:
    """Build a :class:`DistanceOracle` for a connected graph.

    Parameters
    ----------
    tau:
        Decomposition granularity; defaults to ``⌈sqrt(n) / log² n⌉`` so the
        number of clusters is ``O(sqrt(n))`` and the APSP matrices stay linear
        in the graph size.
    use_cluster2:
        Use CLUSTER2 (the variant with the Theorem 3 path-intersection
        guarantee); CLUSTER alone still yields valid bounds, just without the
        polylog approximation guarantee.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    if tau is None:
        tau = max(1, int(math.ceil(math.sqrt(n) / max(1.0, math.log2(max(2, n)) ** 2))))
    if use_cluster2:
        clustering = cluster2(graph, tau, seed=rng).clustering
    else:
        clustering = cluster(graph, tau, seed=rng)
    weighted_quotient = build_quotient_graph(graph, clustering, weighted=True)
    unweighted_quotient = build_quotient_graph(graph, clustering, weighted=False)
    upper = _all_pairs_matrix(weighted_quotient, weighted=True)
    lower = _all_pairs_matrix(unweighted_quotient, weighted=False)
    return DistanceOracle(clustering=clustering, upper_matrix=upper, lower_matrix=lower)
