"""Linear-space approximate distance oracle (end of Section 4), batch-first.

Running CLUSTER2(τ) with ``τ = O(sqrt(n) / log⁴ n)`` produces ``O(sqrt(n))``
clusters; storing the all-pairs shortest-path matrix of the weighted quotient
graph then takes ``O(n)`` space and yields, for every pair of nodes ``(u, v)``,
an upper bound

    d'(u, v) = dist(u, c_u) + dist_{G_C}(C_u, C_v) + dist(v, c_v)

that is within ``O(d(u, v) log³ n + R_ALG2)`` of the true distance — i.e. a
polylogarithmic approximation for pairs that are far apart (distance
``Ω(R_ALG2)``).  The oracle also returns the trivial lower bound given by the
unweighted quotient hop distance.

The public API is **batch-first**: :meth:`DistanceOracle.query_batch` answers
thousands of ``(u, v)`` pairs per call as pure vectorized gathers over four
aligned arrays (per-node cluster id, per-node center distance, and the two
``k × k`` quotient matrices) with zero per-query Python.  The scalar
:meth:`DistanceOracle.query` is a thin wrapper over a length-1 batch, pinned
bit-identical to the historical per-query implementation by the
frozen-reference tests.  :class:`~repro.serving.GraphService` builds its
serving plane directly on these arrays.

Weighted graphs are served through the §7 weighted decomposition: the upper
matrix holds genuine center-to-center path lengths
(:func:`repro.weighted.applications.build_weighted_quotient`) and the hop
lower bound is scaled by the minimum edge weight (every cluster crossing
costs at least one edge, hence at least ``w_min``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.cluster import cluster
from repro.core.cluster2 import cluster2
from repro.core.quotient import build_quotient_graph, quotient_apsp
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_node_index

__all__ = [
    "DistanceOracle",
    "build_distance_oracle",
    "check_node_batch",
    "default_oracle_tau",
]


def default_oracle_tau(num_nodes: int) -> int:
    """The oracle's default granularity ``⌈sqrt(n) / log² n⌉``.

    Keeps the number of clusters ``O(sqrt(n))`` so the quotient APSP matrices
    stay linear in the graph size.
    """
    n = num_nodes
    return max(1, int(math.ceil(math.sqrt(n) / max(1.0, math.log2(max(2, n)) ** 2))))


def check_node_batch(nodes, num_nodes: int, name: str = "nodes") -> np.ndarray:
    """Validate a 1-d integer array of node ids, returning it as ``int64``.

    Raises ``ValueError`` for non-1-d input, ``TypeError`` for non-integer
    dtypes, and ``IndexError`` (naming the first offender, mirroring
    :func:`repro.utils.validation.check_node_index`) for out-of-range ids.
    """
    array = np.asarray(nodes)
    if array.ndim != 1:
        raise ValueError(f"{name} must be a 1-d array of node ids, got shape {array.shape}")
    if array.size == 0:
        return array.astype(np.int64)
    if not np.issubdtype(array.dtype, np.integer):
        raise TypeError(f"{name} must be an integer array, got dtype {array.dtype}")
    array = array.astype(np.int64, copy=False)
    bad = (array < 0) | (array >= num_nodes)
    if np.any(bad):
        offender = int(array[np.argmax(bad)])
        raise IndexError(
            f"{name} {offender} out of range for graph with {num_nodes} nodes"
        )
    return array


@dataclass
class DistanceOracle:
    """Approximate distance oracle built on a clustering.

    Space usage: ``O(n)`` for the per-node cluster id / center distance plus
    ``O(k²)`` for the quotient APSP matrices, which is ``O(n)`` overall for
    ``k = O(sqrt(n))`` clusters.

    Attributes
    ----------
    clustering:
        The decomposition the oracle answers from — a
        :class:`~repro.core.clustering.Clustering` (hop metric) or a
        :class:`~repro.weighted.decomposition.WeightedClustering` (weighted
        metric; detected by its ``weighted_distance`` array).
    upper_matrix / lower_matrix:
        ``k × k`` float64 APSP matrices of the weighted and unweighted
        quotient graphs (the weighted-metric oracle scales the hop lower
        matrix by the minimum edge weight at build time).
    same_cluster_lower:
        Lower bound served for distinct same-cluster nodes: ``1.0`` in the
        hop metric, the minimum edge weight in the weighted metric.
    """

    clustering: object
    upper_matrix: np.ndarray
    lower_matrix: np.ndarray
    same_cluster_lower: float = 1.0
    #: Aligned serving arrays derived from ``clustering`` at construction:
    #: per-node cluster id and per-node (float64) distance to the own center.
    assignment: np.ndarray = field(init=False, repr=False)
    center_distance: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.assignment = np.ascontiguousarray(self.clustering.assignment, dtype=np.int64)
        distance = getattr(self.clustering, "weighted_distance", None)
        if distance is None:
            distance = self.clustering.distance
        self.center_distance = np.ascontiguousarray(distance, dtype=np.float64)

    @property
    def num_nodes(self) -> int:
        return int(self.clustering.num_nodes)

    @property
    def num_clusters(self) -> int:
        return self.clustering.num_clusters

    @property
    def is_weighted(self) -> bool:
        """Whether the oracle bounds weighted (rather than hop) distances."""
        return getattr(self.clustering, "weighted_distance", None) is not None

    @property
    def space_entries(self) -> int:
        """Number of stored matrix entries plus per-node words (space accounting)."""
        return int(self.upper_matrix.size + self.lower_matrix.size + 2 * self.clustering.num_nodes)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_batch(self, us, vs) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(lower_bounds, upper_bounds)`` for aligned id arrays.

        ``us`` and ``vs`` are equal-length 1-d integer arrays; the return
        value is a pair of aligned ``float64`` arrays bounding
        ``dist_G(us[i], vs[i])`` for every ``i``.  Semantics per pair (kept
        bit-identical to the historical scalar implementation):

        * ``u == v`` → ``(0, 0)``;
        * same cluster → lower :attr:`same_cluster_lower`, upper
          ``dist(u, c) + dist(v, c)`` (or ``same_cluster_lower`` when both
          are centers of a degenerate cluster);
        * different clusters → the quotient lower bound and the
          route-through-centers upper bound.
        """
        n = self.num_nodes
        us = check_node_batch(us, n, "us")
        vs = check_node_batch(vs, n, "vs")
        if us.shape != vs.shape:
            raise ValueError(
                f"us and vs must have the same length, got {us.size} and {vs.size}"
            )
        if us.size == 0:
            empty = np.zeros(0, dtype=np.float64)
            return empty, empty.copy()
        cu = self.assignment[us]
        cv = self.assignment[vs]
        du = self.center_distance[us]
        dv = self.center_distance[vs]
        through_centers = du + self.upper_matrix[cu, cv] + dv
        via_own_center = du + dv
        same = cu == cv
        upper = np.where(
            same,
            np.where(via_own_center > 0, via_own_center, self.same_cluster_lower),
            through_centers,
        )
        lower = np.where(same, self.same_cluster_lower, self.lower_matrix[cu, cv])
        identical = us == vs
        if np.any(identical):
            lower[identical] = 0.0
            upper[identical] = 0.0
        return lower, upper

    def query(self, u: int, v: int) -> Tuple[float, float]:
        """Scalar ``(lower_bound, upper_bound)`` on ``dist_G(u, v)``.

        A thin wrapper over a length-1 :meth:`query_batch`; bit-identical to
        the historical per-query implementation (pinned by the
        frozen-reference tests in ``tests/core/test_oracle.py``).
        """
        n = self.clustering.num_nodes
        ui = check_node_index(u, n, "u")
        vi = check_node_index(v, n, "v")
        lower, upper = self.query_batch(
            np.asarray([ui], dtype=np.int64), np.asarray([vi], dtype=np.int64)
        )
        return float(lower[0]), float(upper[0])

    def query_upper(self, u: int, v: int) -> float:
        """Deprecated upper-bound-only wrapper.

        .. deprecated:: 1.1
           Use ``query_batch(us, vs)[1]`` (or ``query(u, v)[1]``) instead.
        """
        warnings.warn(
            "DistanceOracle.query_upper is deprecated; use "
            "query_batch(us, vs)[1] for batched upper bounds "
            "(or query(u, v)[1] for a single pair)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(u, v)[1]


def build_distance_oracle(
    graph: CSRGraph,
    *,
    tau: Optional[int] = None,
    seed: SeedLike = None,
    use_cluster2: bool = True,
    clustering=None,
) -> DistanceOracle:
    """Build a :class:`DistanceOracle` for a connected graph.

    Parameters
    ----------
    tau:
        Decomposition granularity; defaults to :func:`default_oracle_tau` so
        the number of clusters is ``O(sqrt(n))`` and the APSP matrices stay
        linear in the graph size.  Ignored when ``clustering`` is given.
    use_cluster2:
        Use CLUSTER2 (the variant with the Theorem 3 path-intersection
        guarantee); CLUSTER alone still yields valid bounds, just without the
        polylog approximation guarantee.  Ignored for weighted graphs (which
        use the §7 weighted decomposition) and when ``clustering`` is given.
    clustering:
        A precomputed decomposition to build on (e.g. from
        :meth:`repro.core.pipeline.DecompositionPipeline.decompose`), instead
        of re-running the decomposition here: weighted graphs require a
        :class:`~repro.weighted.decomposition.WeightedClustering`, unweighted
        graphs a plain :class:`~repro.core.clustering.Clustering`.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    weighted = graph.is_weighted
    if clustering is not None:
        if clustering.num_nodes != n:
            raise ValueError("graph and clustering refer to different node sets")
        clustering_weighted = getattr(clustering, "weighted_distance", None) is not None
        if clustering_weighted != weighted:
            raise ValueError(
                "graph/clustering metric mismatch: a weighted graph needs a "
                "WeightedClustering and an unweighted graph a plain Clustering"
            )
    else:
        rng = as_rng(seed)
        if tau is None:
            tau = default_oracle_tau(n)
        if weighted:
            from repro.weighted.decomposition import weighted_cluster

            clustering = weighted_cluster(graph, tau, seed=rng)
        elif use_cluster2:
            clustering = cluster2(graph, tau, seed=rng).clustering
        else:
            clustering = cluster(graph, tau, seed=rng)
    if weighted:
        from repro.weighted.applications import build_weighted_quotient

        upper_quotient = build_weighted_quotient(graph, clustering)
        # Every cluster crossing costs at least one edge, so the hop lower
        # bound transfers to the weighted metric scaled by w_min.
        scale = float(graph.weights.min()) if graph.weights.size else 1.0
    else:
        upper_quotient = build_quotient_graph(graph, clustering, weighted=True)
        scale = 1.0
    hop_quotient = build_quotient_graph(graph, clustering, weighted=False)
    upper = quotient_apsp(upper_quotient)
    lower = quotient_apsp(hop_quotient)
    if scale != 1.0:
        lower = lower * scale
    return DistanceOracle(
        clustering=clustering,
        upper_matrix=upper,
        lower_matrix=lower,
        same_cluster_lower=scale,
    )
