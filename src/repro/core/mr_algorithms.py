"""MR-model drivers for the decomposition-based algorithms (Section 5).

The in-memory implementations in :mod:`repro.core.cluster` /
:mod:`repro.core.diameter` record a complete execution trace (one entry per
parallel growing step, one per outer iteration).  The drivers in this module
replay that trace against the MR(M_G, M_L) accounting of
:mod:`repro.mapreduce`, charging

* one round per cluster-growing step (Lemma 3: a growing step is a constant
  number of sort / prefix-sum operations, i.e. ``O(1)`` rounds when
  ``M_L = Ω(n^ε)``), with a communication volume equal to the adjacency
  entries scanned by that step,
* one round per outer iteration for the center-selection / coverage-count
  bookkeeping, with communication proportional to the uncovered set,
* ``O(log_{M_L} m)`` rounds to build the quotient graph (a sort of the edge
  multiset by cluster pair), and
* a single round with a single reducer to compute the quotient diameter
  (Theorem 4's small-quotient regime), after checking that the quotient graph
  actually fits in the local memory ``M_L``.

This is what turns the paper's Table 4 / Figure 1 "time" columns into
measurable quantities on a single machine: rounds, shuffled pairs, and the
simulated time of :class:`repro.mapreduce.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.core.clustering import Clustering
from repro.core.diameter import DiameterEstimate
from repro.graph.csr import CSRGraph
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.metrics import MRMetrics
from repro.mapreduce.model import MRModel, rounds_for_primitive
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.weighted
    from repro.weighted.decomposition import WeightedClustering

__all__ = [
    "MRExecutionReport",
    "charge_clustering_rounds",
    "charge_quotient_rounds",
    "mr_estimate_diameter",
    "mr_cluster_decomposition",
    "mr_weighted_cluster_decomposition",
]


@dataclass(frozen=True)
class MRExecutionReport:
    """Outcome of an algorithm executed under MR accounting.

    Attributes
    ----------
    estimate:
        The diameter estimate (``None`` for pure decomposition runs).
    clustering:
        The decomposition produced (unweighted or weighted).
    metrics:
        Round / communication counters.
    simulated_time:
        Seconds under the configured :class:`CostModel`.
    """

    estimate: Optional[DiameterEstimate]
    clustering: "Union[Clustering, WeightedClustering]"
    metrics: MRMetrics
    simulated_time: float

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def shuffled_pairs(self) -> int:
        return self.metrics.shuffled_pairs


def charge_clustering_rounds(
    engine: MREngine, clustering: "Union[Clustering, WeightedClustering]"
) -> None:
    """Replay a clustering execution trace as MR rounds on ``engine``.

    Works on any decomposition carrying the unified growth trace (``num_nodes``,
    ``iterations``, ``step_log``) — both the unweighted :class:`Clustering` and
    the weighted :class:`~repro.weighted.decomposition.WeightedClustering`
    produced by the shared :class:`~repro.core.growth_engine.GrowthEngine`.
    A weighted growing round is still a constant number of MR rounds: the
    min-weight tie-break replaces the arbitrary claim sort with a sort keyed
    by accumulated distance, which Lemma 3's sort/prefix-sum argument covers
    unchanged.

    The replay itself is array-native: the whole trace is charged through
    :meth:`~repro.mapreduce.engine.MREngine.charge_rounds_batch` (whole-array
    sum/max counter updates) instead of one Python-level ``charge_rounds``
    call per growing step, so replaying a long weighted trace costs two array
    reductions, not thousands of metric-record calls.  The resulting
    :class:`~repro.mapreduce.metrics.MRMetrics` are identical to the
    per-round loop by construction.
    """
    ml = engine.model.local_memory
    primitive_rounds = rounds_for_primitive(
        max(1, 2 * clustering.num_nodes), ml
    )
    # Outer iterations: center selection + coverage counting (a prefix sum),
    # `primitive_rounds` charged rounds per iteration.
    uncovered = np.fromiter(
        (iteration.uncovered_before for iteration in clustering.iterations),
        dtype=np.int64,
        count=len(clustering.iterations),
    )
    engine.charge_rounds_batch(np.repeat(uncovered, primitive_rounds), label="center-selection")
    # Growing steps: one (constant number of) round(s) each; communication is
    # the adjacency volume actually scanned by the step.
    scanned = np.fromiter(
        (step.arcs_scanned + step.frontier_size for step in clustering.step_log),
        dtype=np.int64,
        count=len(clustering.step_log),
    )
    engine.charge_rounds_batch(scanned, label="growing-step")


def charge_quotient_rounds(
    engine: MREngine,
    graph: CSRGraph,
    *,
    num_quotient_edges: int,
    enforce_local_memory: bool = True,
) -> None:
    """Charge the rounds for building the quotient graph and computing its diameter."""
    ml = engine.model.local_memory
    # Building the quotient graph: a sort of the 2m arcs by cluster pair.
    engine.charge_rounds(
        rounds_for_primitive(max(1, graph.num_directed_edges), ml),
        pairs_per_round=graph.num_directed_edges,
        label="quotient-build",
    )
    # Quotient diameter on a single reducer: the quotient graph (2 * m_C arcs)
    # must fit in local memory; this is the Theorem 4 requirement.
    quotient_arcs = 2 * num_quotient_edges
    if enforce_local_memory and ml is not None and quotient_arcs > ml:
        engine.model.check_round(max_reducer_input=quotient_arcs, live_pairs=quotient_arcs)
    engine.charge_rounds(1, pairs_per_round=quotient_arcs, label="quotient-diameter")


def mr_cluster_decomposition(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: BackendSpec = "serial",
    num_shards: Optional[int] = None,
) -> MRExecutionReport:
    """Run CLUSTER(τ) and account for its execution in the MR model."""
    from repro.core.cluster import cluster

    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    clustering = cluster(graph, tau, seed=seed)
    charge_clustering_rounds(engine, clustering)
    return MRExecutionReport(
        estimate=None,
        clustering=clustering,
        metrics=engine.metrics,
        simulated_time=cost_model.simulated_time(engine.metrics),
    )


def mr_weighted_cluster_decomposition(
    wgraph,
    tau: int,
    *,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: BackendSpec = "serial",
    num_shards: Optional[int] = None,
) -> MRExecutionReport:
    """Run the §7 weighted CLUSTER(τ) and account for it in the MR model.

    The weighted decomposition records the same unified per-step /
    per-iteration trace as the unweighted algorithms, so its MR-round and
    communication accounting is the exact same replay.
    """
    from repro.weighted.decomposition import weighted_cluster

    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    clustering = weighted_cluster(wgraph, tau, seed=seed)
    charge_clustering_rounds(engine, clustering)
    return MRExecutionReport(
        estimate=None,
        clustering=clustering,
        metrics=engine.metrics,
        simulated_time=cost_model.simulated_time(engine.metrics),
    )


def mr_estimate_diameter(
    graph: CSRGraph,
    *,
    tau: Optional[int] = None,
    target_clusters: Optional[int] = None,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    use_cluster2: bool = False,
    enforce_local_memory: bool = False,
    backend: BackendSpec = "serial",
    num_shards: Optional[int] = None,
) -> MRExecutionReport:
    """Full decomposition-based diameter estimation under MR accounting.

    This is the driver behind the CLUSTER columns of the Table 4 and Figure 1
    reproductions: the returned report carries both the diameter estimate and
    the rounds / communication / simulated-time metrics.  ``backend`` /
    ``num_shards`` select the engine's execution backend (metrics are
    backend-independent by construction).  Implemented as the
    :class:`~repro.core.pipeline.DecompositionPipeline`'s MR accounting pass.
    """
    from repro.core.pipeline import DecompositionPipeline, PipelineConfig

    pipeline = DecompositionPipeline(
        graph,
        PipelineConfig(
            method="cluster2" if use_cluster2 else "cluster",
            tau=tau,
            target_clusters=target_clusters,
            seed=seed,
            weighted_quotient=True,
            enforce_local_memory=enforce_local_memory,
            mr_backend=backend,
            mr_shards=num_shards,
        ),
    )
    return pipeline.mr_report(model=model, cost_model=cost_model)
