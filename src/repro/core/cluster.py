"""Algorithm 1 of the paper: CLUSTER(τ).

CLUSTER partitions the node set into disjoint connected clusters by growing
clusters from *progressive batches* of centers:

* while more than ``8 τ log n`` nodes are uncovered,
* select every uncovered node as a new center independently with probability
  ``4 τ log n / |uncovered|``,
* grow all clusters (new and old) in parallel, disjointly, until at least half
  of the previously uncovered nodes become covered,
* finally, promote any leftover uncovered nodes to singleton clusters.

Theorem 1 shows the result has ``O(τ log² n)`` clusters and that the maximum
radius is within an ``O(log n)`` factor of the best radius achievable with
``τ`` clusters; Lemma 1 bounds the radius by ``O(⌈∆ / τ^{1/b}⌉ log n)`` for a
graph with diameter ∆ and doubling dimension b.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.clustering import Clustering, IterationStats
from repro.core.growth import ClusterGrowth
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng, random_subset_mask

__all__ = ["cluster", "cluster_with_target_clusters", "selection_probability", "uncovered_threshold"]


def _log_n(num_nodes: int) -> float:
    """``log₂ n`` guarded against degenerate sizes (paper uses base-2 logs)."""
    return math.log2(max(2, num_nodes))


def uncovered_threshold(num_nodes: int, tau: int) -> float:
    """The ``8 τ log n`` stopping threshold of Algorithm 1's while loop."""
    return 8.0 * tau * _log_n(num_nodes)


def selection_probability(num_nodes: int, tau: int, num_uncovered: int) -> float:
    """The ``4 τ log n / |V - V'|`` center-selection probability (clamped to 1)."""
    if num_uncovered <= 0:
        return 0.0
    return min(1.0, 4.0 * tau * _log_n(num_nodes) / num_uncovered)


def cluster(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    max_iterations: Optional[int] = None,
) -> Clustering:
    """Run CLUSTER(τ) on ``graph`` and return the resulting decomposition.

    Parameters
    ----------
    graph:
        Unweighted undirected graph.  The graph need not be connected: as
        observed in §3.2 of the paper, the algorithm remains correct for a
        graph with ``h`` components as long as τ ≥ h (otherwise some
        components simply end up covered by the final singleton promotion or
        by centers that happen to land there).
    tau:
        Granularity parameter (τ ≥ 1).  Larger τ ⇒ more clusters, smaller
        radius.
    seed:
        Randomness for center selection.
    max_iterations:
        Optional safety cap on outer iterations (defaults to ``4 log n + 8``;
        the analysis guarantees ``⌈log(n / (8 τ log n))⌉`` iterations).

    Returns
    -------
    Clustering
        Validated decomposition with per-iteration / per-step execution trace.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    n = graph.num_nodes
    growth = ClusterGrowth(graph)
    if n == 0:
        return growth.to_clustering(algorithm="cluster")

    threshold = uncovered_threshold(n, tau)
    limit = max_iterations if max_iterations is not None else int(4 * _log_n(n)) + 8
    iteration = 0

    while growth.num_uncovered >= threshold and growth.num_uncovered > 0:
        if iteration >= limit:
            break
        uncovered = growth.uncovered_nodes
        uncovered_before = int(uncovered.size)
        probability = selection_probability(n, tau, uncovered_before)
        mask = random_subset_mask(uncovered_before, probability, rng)
        selected = uncovered[mask]
        if selected.size == 0 and growth.num_clusters == 0:
            # Degenerate (very unlikely) draw with no active clusters: force a
            # single random center so the process can make progress.
            selected = rng.choice(uncovered, size=1)
        growth.mark()
        accepted = growth.add_centers(selected)
        target = int(math.ceil(uncovered_before / 2.0))
        steps = growth.grow_until(target)
        growth.record_iteration(
            IterationStats(
                iteration=iteration,
                uncovered_before=uncovered_before,
                new_centers=int(accepted.size),
                growth_steps=steps,
                covered_after=growth.num_covered,
                selection_probability=probability,
            )
        )
        iteration += 1

    growth.cover_remaining_as_singletons()
    return growth.to_clustering(algorithm="cluster")


def cluster_with_target_clusters(
    graph: CSRGraph,
    target_clusters: int,
    *,
    seed: SeedLike = None,
    tolerance: float = 0.35,
    max_trials: int = 12,
) -> Clustering:
    """Run CLUSTER with τ tuned so the number of clusters lands near a target.

    Neither CLUSTER nor MPX can fix the number of clusters a priori (it is a
    random variable); the paper's experiments therefore tune the granularity
    parameter until the observed number of clusters is "close enough" to the
    desired decomposition granularity.  This helper performs that tuning with
    a multiplicative search on τ, mirroring the experimental protocol of §6.1.

    Parameters
    ----------
    target_clusters:
        Desired number of clusters (e.g. ``n / 1000`` for small-diameter
        graphs in Table 2).
    tolerance:
        Accept a clustering whose cluster count is within
        ``(1 ± tolerance) * target_clusters``.
    max_trials:
        Maximum number of CLUSTER invocations before returning the closest
        attempt seen.
    """
    if target_clusters < 1:
        raise ValueError("target_clusters must be >= 1")
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    log_sq = _log_n(n) ** 2
    # Theorem 1: #clusters = O(τ log² n); start from the inversion and adjust.
    tau = max(1, int(round(target_clusters / max(1.0, 0.25 * log_sq))))
    best: Optional[Clustering] = None
    best_gap = float("inf")
    for _ in range(max_trials):
        result = cluster(graph, tau, seed=rng)
        count = result.num_clusters
        gap = abs(count - target_clusters) / target_clusters
        if gap < best_gap:
            best, best_gap = result, gap
        if (1 - tolerance) * target_clusters <= count <= (1 + tolerance) * target_clusters:
            return result
        ratio = target_clusters / max(1, count)
        # Dampened multiplicative update; τ moves in the direction of the miss.
        tau = max(1, int(round(tau * min(4.0, max(0.25, ratio)))))
        if tau >= n:
            tau = n // 2 or 1
    assert best is not None
    return best
