"""Algorithm 1 of the paper: CLUSTER(τ).

CLUSTER partitions the node set into disjoint connected clusters by growing
clusters from *progressive batches* of centers:

* while more than ``8 τ log n`` nodes are uncovered,
* select every uncovered node as a new center independently with probability
  ``4 τ log n / |uncovered|``,
* grow all clusters (new and old) in parallel, disjointly, until at least half
  of the previously uncovered nodes become covered,
* finally, promote any leftover uncovered nodes to singleton clusters.

The growing itself is delegated to the shared
:class:`~repro.core.growth_engine.GrowthEngine`: CLUSTER is exactly the
engine driven by a :class:`~repro.core.growth_engine.BatchHalvingSchedule`
with the arbitrary tie-break policy.

Theorem 1 shows the result has ``O(τ log² n)`` clusters and that the maximum
radius is within an ``O(log n)`` factor of the best radius achievable with
``τ`` clusters; Lemma 1 bounds the radius by ``O(⌈∆ / τ^{1/b}⌉ log n)`` for a
graph with diameter ∆ and doubling dimension b.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.clustering import Clustering
from repro.core.growth_engine import (
    BatchHalvingSchedule,
    GrowthEngine,
    selection_probability,
    uncovered_threshold,
)
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "cluster",
    "cluster_with_target_clusters",
    "selection_probability",
    "tune_tau",
    "uncovered_threshold",
]


def tune_tau(run, num_nodes, target_clusters, *, tolerance=0.35, max_trials=12):
    """Multiplicative τ search of the §6.1 experimental protocol.

    ``run(tau)`` executes one decomposition trial and returns any object with
    a ``num_clusters`` attribute; the search inverts Theorem 1's
    ``#clusters = O(τ log² n)`` bound for the starting τ and then moves τ
    multiplicatively toward the target until the count lands within
    ``(1 ± tolerance) * target_clusters`` (or ``max_trials`` is exhausted, in
    which case the closest attempt is returned).  Shared by the unweighted
    and weighted ``*_with_target_clusters`` frontends, which only differ in
    the decomposition ``run``.
    """
    if target_clusters < 1:
        raise ValueError("target_clusters must be >= 1")
    n = num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    log_sq = math.log2(max(2, n)) ** 2
    # Theorem 1: #clusters = O(τ log² n); start from the inversion and adjust.
    tau = max(1, int(round(target_clusters / max(1.0, 0.25 * log_sq))))
    best = None
    best_gap = float("inf")
    for _ in range(max_trials):
        result = run(tau)
        count = result.num_clusters
        gap = abs(count - target_clusters) / target_clusters
        if gap < best_gap:
            best, best_gap = result, gap
        if (1 - tolerance) * target_clusters <= count <= (1 + tolerance) * target_clusters:
            return result
        ratio = target_clusters / max(1, count)
        # Dampened multiplicative update; τ moves in the direction of the miss.
        tau = max(1, int(round(tau * min(4.0, max(0.25, ratio)))))
        if tau >= n:
            tau = n // 2 or 1
    assert best is not None
    return best


def cluster(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    max_iterations: Optional[int] = None,
) -> Clustering:
    """Run CLUSTER(τ) on ``graph`` and return the resulting decomposition.

    Parameters
    ----------
    graph:
        Unweighted undirected graph.  The graph need not be connected: as
        observed in §3.2 of the paper, the algorithm remains correct for a
        graph with ``h`` components as long as τ ≥ h (otherwise some
        components simply end up covered by the final singleton promotion or
        by centers that happen to land there).
    tau:
        Granularity parameter (τ ≥ 1).  Larger τ ⇒ more clusters, smaller
        radius.
    seed:
        Randomness for center selection.
    max_iterations:
        Optional safety cap on outer iterations (defaults to ``4 log n + 8``;
        the analysis guarantees ``⌈log(n / (8 τ log n))⌉`` iterations).

    Returns
    -------
    Clustering
        Validated decomposition with per-iteration / per-step execution trace.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    schedule = BatchHalvingSchedule(tau, as_rng(seed), max_iterations=max_iterations)
    return GrowthEngine(graph).run(schedule).to_clustering(algorithm="cluster")


def cluster_with_target_clusters(
    graph: CSRGraph,
    target_clusters: int,
    *,
    seed: SeedLike = None,
    tolerance: float = 0.35,
    max_trials: int = 12,
) -> Clustering:
    """Run CLUSTER with τ tuned so the number of clusters lands near a target.

    Neither CLUSTER nor MPX can fix the number of clusters a priori (it is a
    random variable); the paper's experiments therefore tune the granularity
    parameter until the observed number of clusters is "close enough" to the
    desired decomposition granularity.  This helper performs that tuning with
    a multiplicative search on τ, mirroring the experimental protocol of §6.1.

    Parameters
    ----------
    target_clusters:
        Desired number of clusters (e.g. ``n / 1000`` for small-diameter
        graphs in Table 2).
    tolerance:
        Accept a clustering whose cluster count is within
        ``(1 ± tolerance) * target_clusters``.
    max_trials:
        Maximum number of CLUSTER invocations before returning the closest
        attempt seen.
    """
    rng = as_rng(seed)
    return tune_tau(
        lambda tau: cluster(graph, tau, seed=rng),
        graph.num_nodes,
        target_clusters,
        tolerance=tolerance,
        max_trials=max_trials,
    )
