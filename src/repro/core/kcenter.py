"""Graph k-center approximation via CLUSTER (Section 3.1 / 3.2 of the paper).

The (unit-weight, graph-metric) k-center problem asks for a set ``M`` of ``k``
nodes minimizing ``max_v dist(v, M)``.  The paper's algorithm:

1. run CLUSTER(τ) with ``τ = Θ(k / log² n)`` so that, with high probability,
   at most ``k`` clusters are returned (Theorem 2);
2. if the decomposition still has more than ``k`` clusters (or, for
   disconnected graphs with ``h ≤ k = o(h log² n)`` components, when running
   CLUSTER(h)), merge clusters along a spanning forest of the quotient graph
   into ``k`` groups, exactly as in the proof of Theorem 2;
3. the returned centers are the cluster centers (one representative per
   merged group); the objective value is evaluated by a multi-source BFS from
   the centers.

Theorem 2: the result is an ``O(log³ n)``-approximation with high
probability (for ``k = Ω(log² n)``).

Both the decomposition (step 1, via :func:`repro.core.cluster.cluster`) and
the nearest-center evaluation (step 3, via
:func:`repro.core.growth_engine.multi_source_growth`) drive the shared
:class:`~repro.core.growth_engine.GrowthEngine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.cluster import cluster
from repro.core.clustering import Clustering
from repro.core.growth_engine import multi_source_growth
from repro.core.quotient import build_quotient_graph
from repro.graph.components import num_connected_components
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["KCenterResult", "kcenter", "evaluate_centers", "merge_clusters_to_k"]


@dataclass(frozen=True)
class KCenterResult:
    """A k-center solution.

    Attributes
    ----------
    centers:
        int64 array of at most ``k`` center node ids.
    assignment:
        int64 array assigning every node to the index (into ``centers``) of
        its nearest center.
    distance:
        int64 array of distances to the assigned (nearest) center.
    radius:
        The objective value ``max_v dist(v, centers)``.
    algorithm:
        Producing algorithm ("cluster", "gonzalez", "random", ...).
    """

    centers: np.ndarray
    assignment: np.ndarray
    distance: np.ndarray
    radius: int
    algorithm: str = "cluster"

    @property
    def k(self) -> int:
        return int(self.centers.size)


def evaluate_centers(graph: CSRGraph, centers: "np.ndarray | List[int]", algorithm: str = "custom") -> KCenterResult:
    """Evaluate an arbitrary center set: nearest-center assignment and radius.

    The nearest-center assignment is one disjoint multi-source growth of the
    shared :class:`~repro.core.growth_engine.GrowthEngine` (cluster id ``i``
    is the ``i``-th center in sorted order).  Unreachable nodes (disconnected
    graphs whose component contains no center) make the radius infinite,
    reported as ``graph.num_nodes`` (a value larger than any finite
    eccentricity) to keep the arithmetic integral; they are assigned to the
    first center.
    """
    center_array = np.unique(np.asarray(list(centers), dtype=np.int64))
    if center_array.size == 0:
        raise ValueError("at least one center is required")
    engine = multi_source_growth(graph, center_array)
    distances = engine.distance.copy()
    unreachable = distances < 0
    radius = int(distances[~unreachable].max()) if np.any(~unreachable) else 0
    assignment = engine.assignment.copy()
    if np.any(unreachable):
        radius = graph.num_nodes
        distances[unreachable] = graph.num_nodes
        assignment[unreachable] = 0
    return KCenterResult(
        centers=center_array,
        assignment=assignment,
        distance=distances,
        radius=radius,
        algorithm=algorithm,
    )


def merge_clusters_to_k(
    graph: CSRGraph, clustering: Clustering, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Merge the clusters of ``clustering`` into at most ``k`` groups.

    Implements the spanning-tree merging argument in the proof of Theorem 2:
    build a spanning forest of the quotient graph, then cut it into at most
    ``k`` connected subtrees of balanced size (post-order accumulation), and
    return one representative center per subtree.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    w = clustering.num_clusters
    if w <= k:
        return clustering.centers.copy()
    quotient = build_quotient_graph(graph, clustering, weighted=False)
    parent = np.full(w, -1, dtype=np.int64)
    order: List[int] = []
    visited = np.zeros(w, dtype=bool)
    # BFS spanning forest of the quotient graph (handles disconnected quotients).
    for root in range(w):
        if visited[root]:
            continue
        visited[root] = True
        queue = [root]
        while queue:
            u = queue.pop()
            order.append(u)
            for v in quotient.graph.neighbors(u):
                vi = int(v)
                if not visited[vi]:
                    visited[vi] = True
                    parent[vi] = u
                    queue.append(vi)
    # Cut the forest into groups of at most ceil(w / k) clusters via post-order
    # accumulation: children are merged into their parent until the budget is
    # reached, at which point the subtree is "cut off" as one group.
    budget = math.ceil(w / k)
    group = -np.ones(w, dtype=np.int64)
    subtree_size = np.ones(w, dtype=np.int64)
    next_group = 0
    for u in reversed(order):
        if subtree_size[u] >= budget or parent[u] < 0:
            group[u] = next_group
            next_group += 1
        else:
            subtree_size[parent[u]] += subtree_size[u]
    # Propagate group labels down the tree (nodes not cut inherit their parent's group).
    for u in order:
        if group[u] < 0:
            group[u] = group[parent[u]]
    representatives = []
    represented_clusters = set()
    seen = set()
    for u in order:
        g = int(group[u])
        if g not in seen:
            seen.add(g)
            representatives.append(int(clustering.centers[u]))
            represented_clusters.add(u)
    reps = np.asarray(representatives, dtype=np.int64)
    if reps.size > k:
        rng = as_rng(seed)
        reps = rng.choice(reps, size=k, replace=False)
    elif reps.size < k:
        # Star-shaped quotient trees can collapse into fewer than k groups
        # (every leaf subtree stays below the budget).  Spend the remaining
        # center budget on the centers of the largest unrepresented clusters —
        # extra centers can only improve the k-center objective.
        sizes = clustering.cluster_sizes()
        unused = [c for c in np.argsort(sizes)[::-1] if c not in represented_clusters]
        extra = [int(clustering.centers[c]) for c in unused[: k - reps.size]]
        reps = np.concatenate([reps, np.asarray(extra, dtype=np.int64)])
    return np.unique(reps)


def kcenter(
    graph: CSRGraph,
    k: int,
    *,
    seed: SeedLike = None,
    tau: Optional[int] = None,
) -> KCenterResult:
    """Approximate graph k-center via CLUSTER (Theorem 2 / Section 3.2).

    Parameters
    ----------
    graph:
        Unweighted undirected graph (need not be connected; ``k`` must be at
        least the number of connected components for a finite radius).
    k:
        Number of centers.
    tau:
        Override the granularity parameter; defaults to
        ``max(1, round(k / log² n))`` for connected-ish cases and to the
        number of components ``h`` when ``k < h log² n`` (the §3.2 recipe).

    Returns
    -------
    KCenterResult
        The solution with at most ``k`` centers; its ``radius`` is the
        evaluated objective value.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    if k >= n:
        return evaluate_centers(graph, np.arange(n, dtype=np.int64), algorithm="cluster")

    log_sq = math.log2(max(2, n)) ** 2
    if tau is None:
        h = num_connected_components(graph)
        if h > 1 and k < h * log_sq:
            # §3.2: run CLUSTER(h) and merge the O(h log² n) clusters down to k.
            tau = max(1, h)
        else:
            tau = max(1, int(round(k / log_sq)))
    clustering = cluster(graph, tau, seed=rng)
    centers = merge_clusters_to_k(graph, clustering, k, seed=rng)
    return evaluate_centers(graph, centers, algorithm="cluster")
