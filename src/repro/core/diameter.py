"""Decomposition-based diameter approximation (Section 4 of the paper).

The estimator:

1. decompose the graph with CLUSTER(τ) (the "simplified version" used in the
   paper's experiments) or CLUSTER2(τ) (the variant with the full theoretical
   guarantees),
2. build the quotient graph of the decomposition,
3. compute the quotient diameter, and
4. report

   * ``∆_C`` — the unweighted quotient diameter, a **lower bound** on ∆,
   * ``∆'  = 2·R·(∆_C + 1) + ∆_C`` — the unweighted **upper bound**,
   * ``∆'' = 2·R + ∆'_C`` — the tighter upper bound from the weighted
     quotient graph (this is the number reported in Tables 3 and 4).

Corollary 1 guarantees ``∆_C ≤ ∆ ≤ ∆' = O(∆ log³ n)`` with high probability
when CLUSTER2 is used; the experiments show the weighted bound is below
``2∆`` in practice.

:func:`estimate_diameter` is a thin wrapper over the
:class:`~repro.core.pipeline.DecompositionPipeline` (which caches the
decomposition and quotient stages for reuse); use the pipeline directly when
you need the intermediates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.clustering import Clustering
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike

__all__ = ["DiameterEstimate", "estimate_diameter", "diameter_upper_bounds", "default_tau"]


@dataclass(frozen=True)
class DiameterEstimate:
    """Result of the decomposition-based diameter estimation.

    Attributes
    ----------
    lower_bound:
        ``∆_C`` — unweighted quotient diameter (a true lower bound on ∆).
    upper_bound:
        The estimate reported by the algorithm: the weighted bound ``∆''``
        when the weighted quotient was computed, otherwise ``∆'``.
    upper_bound_unweighted:
        ``∆' = 2·R·(∆_C + 1) + ∆_C``.
    upper_bound_weighted:
        ``∆'' = 2·R + ∆'_C`` or ``None`` when ``weighted=False``.
    radius:
        Maximum cluster radius ``R`` of the decomposition used.
    num_clusters / num_quotient_edges:
        Size of the quotient graph (the ``n_C`` / ``m_C`` columns of Table 3).
    clustering:
        The decomposition itself (for further inspection).
    """

    lower_bound: int
    upper_bound: float
    upper_bound_unweighted: int
    upper_bound_weighted: Optional[float]
    radius: int
    num_clusters: int
    num_quotient_edges: int
    clustering: Clustering

    def contains(self, true_diameter: int) -> bool:
        """True if ``lower_bound <= true_diameter <= upper_bound``."""
        return self.lower_bound <= true_diameter <= self.upper_bound

    def approximation_ratio(self, true_diameter: int) -> float:
        """``upper_bound / true_diameter`` (∞ for a zero diameter)."""
        if true_diameter == 0:
            return math.inf
        return float(self.upper_bound) / float(true_diameter)


def default_tau(graph: CSRGraph, *, local_memory: Optional[int] = None) -> int:
    """Pick τ so the quotient graph fits in a single reducer (Theorem 4).

    Theorem 4 sets ``τ = Θ(n^{ε'} / log⁴ n)`` so that the quotient graph has
    ``O(n^{ε'})`` nodes and can be processed by one reducer with
    ``M_L = Θ(n^ε)`` local memory.  With an explicit ``local_memory`` budget
    we simply aim for ``≈ sqrt(local_memory)`` quotient nodes; otherwise we
    default to ``≈ sqrt(n)`` clusters.
    """
    n = graph.num_nodes
    if n <= 2:
        return 1
    if local_memory is not None:
        target_nodes = max(2.0, math.sqrt(local_memory))
    else:
        target_nodes = math.sqrt(n)
    log_sq = math.log2(max(2, n)) ** 2
    return max(1, int(round(target_nodes / max(1.0, 0.25 * log_sq))))


def diameter_upper_bounds(
    lower_bound: float, radius: int, weighted_quotient_diameter: Optional[float]
) -> tuple:
    """Compute (∆', ∆'') from the quotient diameters and the cluster radius."""
    unweighted_upper = int(2 * radius * (int(lower_bound) + 1) + int(lower_bound))
    weighted_upper = None
    if weighted_quotient_diameter is not None:
        weighted_upper = float(2 * radius + weighted_quotient_diameter)
    return unweighted_upper, weighted_upper


def estimate_diameter(
    graph: CSRGraph,
    *,
    tau: Optional[int] = None,
    target_clusters: Optional[int] = None,
    seed: SeedLike = None,
    use_cluster2: bool = False,
    weighted: bool = True,
    clustering: Optional[Clustering] = None,
) -> DiameterEstimate:
    """Estimate the diameter of a connected graph via graph decomposition.

    Parameters
    ----------
    graph:
        Connected, unweighted, undirected graph.
    tau:
        Granularity parameter.  Exactly one of ``tau`` / ``target_clusters`` /
        ``clustering`` may be provided; with none, :func:`default_tau` is used.
    target_clusters:
        Ask for a decomposition with approximately this many clusters instead
        of fixing τ (matches the experimental protocol of §6.2).
    use_cluster2:
        Use CLUSTER2 (full theoretical guarantees) instead of the simplified
        CLUSTER pipeline used in the paper's experiments.
    weighted:
        Also compute the weighted quotient graph and the tighter ``∆''`` bound.
    clustering:
        Reuse an existing decomposition instead of computing one.

    Returns
    -------
    DiameterEstimate
    """
    from repro.core.pipeline import DecompositionPipeline, PipelineConfig

    provided = sum(x is not None for x in (tau, target_clusters, clustering))
    if provided > 1:
        raise ValueError("provide at most one of tau, target_clusters, clustering")
    config = PipelineConfig(
        method="cluster2" if use_cluster2 else "cluster",
        tau=tau,
        target_clusters=target_clusters,
        seed=seed,
        weighted_quotient=weighted,
    )
    return DecompositionPipeline(graph, config, clustering=clustering).diameter()
