"""Clustering result objects shared by CLUSTER, CLUSTER2, MPX and k-center.

A :class:`Clustering` is a partition of the node set into disjoint,
internally-connected clusters, each with a designated center, together with
the per-node growth distance (the number of growing steps after which the
node was covered — an upper bound on, and in the growth forest equal to, the
distance from the node to its center).  It also carries the execution trace
(per-iteration and per-growing-step statistics) needed by the MR-round
accounting of :mod:`repro.core.mr_algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import multi_source_bfs

__all__ = ["Clustering", "IterationStats", "GrowthStepStats"]


@dataclass(frozen=True)
class GrowthStepStats:
    """Statistics of a single parallel cluster-growing step.

    Attributes
    ----------
    frontier_size:
        Number of frontier nodes expanded in this step.
    arcs_scanned:
        Number of adjacency-list entries examined (the communication volume
        of the corresponding MR round).
    newly_covered:
        Number of previously uncovered nodes covered by this step.
    """

    frontier_size: int
    arcs_scanned: int
    newly_covered: int


@dataclass(frozen=True)
class IterationStats:
    """Statistics of one iteration of the outer loop of CLUSTER / CLUSTER2."""

    iteration: int
    uncovered_before: int
    new_centers: int
    growth_steps: int
    covered_after: int
    selection_probability: float


@dataclass
class Clustering:
    """A disjoint decomposition of a graph into connected clusters.

    Attributes
    ----------
    num_nodes:
        Number of nodes of the underlying graph.
    assignment:
        int64 array mapping every node to its cluster id in ``0..k-1``.
    centers:
        int64 array of length ``k``; ``centers[c]`` is the center node of
        cluster ``c``.
    distance:
        int64 array; growth distance of every node from its cluster center
        (0 for centers).
    growth_steps:
        Total number of parallel growing steps performed (the quantity ``R``
        of Lemma 3 which drives the MR round complexity).
    iterations:
        Per-outer-iteration statistics.
    step_log:
        Per-growing-step statistics, in execution order.
    algorithm:
        Human-readable name of the producing algorithm.
    """

    num_nodes: int
    assignment: np.ndarray
    centers: np.ndarray
    distance: np.ndarray
    growth_steps: int = 0
    iterations: List[IterationStats] = field(default_factory=list)
    step_log: List[GrowthStepStats] = field(default_factory=list)
    algorithm: str = "cluster"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_clusters(self) -> int:
        """Number of clusters ``k``."""
        return int(self.centers.size)

    def cluster_sizes(self) -> np.ndarray:
        """Array of cluster sizes (indexed by cluster id)."""
        return np.bincount(self.assignment, minlength=self.num_clusters).astype(np.int64)

    def radii(self) -> np.ndarray:
        """Growth radius of every cluster (max growth distance of its members)."""
        radii = np.zeros(self.num_clusters, dtype=np.int64)
        np.maximum.at(radii, self.assignment, self.distance)
        return radii

    @property
    def max_radius(self) -> int:
        """Maximum cluster radius ``R_ALG`` (growth-based, as tracked by the algorithm)."""
        return int(self.distance.max()) if self.distance.size else 0

    def members(self, cluster_id: int) -> np.ndarray:
        """Node ids belonging to ``cluster_id``."""
        if not (0 <= cluster_id < self.num_clusters):
            raise IndexError(f"cluster {cluster_id} out of range")
        return np.flatnonzero(self.assignment == cluster_id)

    def exact_radii(self, graph: CSRGraph) -> np.ndarray:
        """Exact cluster radii: true graph distance from each node to its center.

        The growth distance can overestimate the true distance when a shorter
        path to the center runs through another cluster's territory; the exact
        own-center distance is therefore computed with one BFS per cluster
        within the cluster's induced subgraph.
        """
        radii = np.zeros(self.num_clusters, dtype=np.int64)
        for cid in range(self.num_clusters):
            nodes = self.members(cid)
            sub, mapping = graph.subgraph(nodes)
            center_local = int(np.searchsorted(mapping, self.centers[cid]))
            dist = multi_source_bfs(sub, [center_local]).distances
            radii[cid] = int(dist.max()) if dist.size else 0
        return radii

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, graph: Optional[CSRGraph] = None) -> None:
        """Check the structural invariants of the decomposition.

        Raises ``AssertionError`` describing the first violated invariant.
        The graph is required for the connectivity / distance-consistency
        checks; without it only the partition invariants are verified.
        """
        assert self.assignment.shape == (self.num_nodes,), "assignment has wrong shape"
        assert self.distance.shape == (self.num_nodes,), "distance has wrong shape"
        if self.num_nodes == 0:
            return
        assert self.assignment.min() >= 0, "every node must be assigned to a cluster"
        assert self.assignment.max() < self.num_clusters, "assignment references unknown cluster"
        used = np.unique(self.assignment)
        assert used.size == self.num_clusters, "every cluster must be non-empty"
        assert np.all(self.assignment[self.centers] == np.arange(self.num_clusters)), (
            "each center must belong to its own cluster"
        )
        assert np.all(self.distance[self.centers] == 0), "centers must have distance 0"
        assert np.all(self.distance >= 0), "distances must be non-negative"
        if graph is not None:
            assert graph.num_nodes == self.num_nodes, "graph/clustering size mismatch"
            self._validate_growth_consistency(graph)

    def _validate_growth_consistency(self, graph: CSRGraph) -> None:
        """Every non-center node must have a same-cluster neighbour one step closer."""
        nodes = np.flatnonzero(self.distance > 0)
        if nodes.size == 0:
            return
        src, dst = graph.neighbor_blocks(nodes)
        same_cluster = self.assignment[src] == self.assignment[dst]
        closer = self.distance[dst] == self.distance[src] - 1
        good = np.zeros(self.num_nodes, dtype=bool)
        satisfied = src[same_cluster & closer]
        good[satisfied] = True
        missing = nodes[~good[nodes]]
        assert missing.size == 0, (
            f"{missing.size} nodes (e.g. {missing[:5].tolist()}) lack a same-cluster "
            "parent one growth step closer to the center"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def singleton_clustering(cls, num_nodes: int) -> "Clustering":
        """Degenerate clustering where every node is its own center."""
        ids = np.arange(num_nodes, dtype=np.int64)
        return cls(
            num_nodes=num_nodes,
            assignment=ids.copy(),
            centers=ids.copy(),
            distance=np.zeros(num_nodes, dtype=np.int64),
            algorithm="singletons",
        )

    def summary(self) -> dict:
        """Compact dict used by the experiment tables."""
        sizes = self.cluster_sizes()
        return {
            "algorithm": self.algorithm,
            "num_clusters": self.num_clusters,
            "max_radius": self.max_radius,
            "growth_steps": self.growth_steps,
            "largest_cluster": int(sizes.max()) if sizes.size else 0,
            "mean_cluster_size": float(sizes.mean()) if sizes.size else 0.0,
        }
