"""CLUSTER executed natively as MapReduce rounds (reference implementation).

:mod:`repro.core.mr_algorithms` meters the *cost* of the fast in-memory
implementation by replaying its execution trace.  This module goes one step
further and actually *executes* Algorithm 1 as map-shuffle-reduce rounds on
the :class:`~repro.mapreduce.engine.MREngine`, the way the paper's Section 5
describes the distributed implementation:

* the graph lives in CSR arrays; the cluster state lives as
  ``(node, (STATE, cluster_id, distance))`` pairs;
* one growing step is one *structured round*
  (:meth:`~repro.mapreduce.engine.MREngine.run_structured_round`): the map
  phase is an :class:`~repro.mapreduce.structured.ArrayMapper` that expands a
  *claim* ``(neighbour, (CLAIM, cluster_id, distance + 1))`` along every arc
  leaving the current frontier with one ``np.repeat``/gather over the CSR
  arrays (the :func:`repro.graph.kernels.gather_neighbors` primitive), and
  the reduce phase is the registered ``cluster-claim`` segment reducer: an
  uncovered node accepts the smallest claim by ``(distance, cluster_id)``
  (an arbitrary-but-deterministic tie-break) while covered nodes ignore
  claims — all evaluated as C-level segment reductions, without ever
  materializing a tuple per arc;
* center selection and the coverage count are driver-side bookkeeping charged
  as one round per iteration (a prefix-sum in the model).

How the round is physically executed is the backend's choice:
``backend="serial"`` runs the exact same round through the flattened
per-pair *tuple path* (the bit-compatibility reference — and the slow side
of the structured-vs-tuple benchmark gate in
``benchmarks/bench_structured.py``), ``backend="vectorized"`` runs the
zero-Python-call segment reductions, ``backend="process"`` shards the claim
arrays across a persistent worker pool.  Clustering output and
:class:`~repro.mapreduce.metrics.MRMetrics` are bit-identical across all of
them, enforced by the cross-backend suite.

Because the *set* of nodes covered by a growing step does not depend on which
claimant wins a tie, the native execution covers exactly the same node set per
step as the in-memory implementation for the same seed, yielding the same
centers, cluster count and step count; only the ownership tie-breaks differ
(the native reducer accepts the lightest claim, so per-node growth distances
can only shrink).  The test-suite cross-checks the two planes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cluster import selection_probability, uncovered_threshold
from repro.core.clustering import Clustering, IterationStats
from repro.graph import kernels
from repro.graph.csr import CSRGraph
from repro.mapreduce.backends import ArrayPairs
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.model import MRModel
from repro.mapreduce.structured import (
    ArrayMapper,
    StructuredReducer,
    register_structured_reducer,
)
from repro.utils.rng import SeedLike, as_rng, random_subset_mask

__all__ = ["mr_cluster_native", "ClusterClaimReducer", "GrowingRoundMapper"]

# Value rows are ``(tag, cluster_id, distance)`` int64 triples.
_STATE = 0
_CLAIM = 1


class GrowingRoundMapper(ArrayMapper):
    """Map phase of one growing step, emitted directly as :class:`ArrayPairs`.

    The input batch holds one ``(node, (STATE, cluster_id, distance))`` row
    per frontier node.  The mapper appends (i) one state row per node that
    could receive a claim — the reducer needs those to know whether a target
    is already covered — and (ii) one claim row
    ``(neighbour, (CLAIM, cluster_id, distance + 1))`` per arc leaving a
    covered frontier node: a single gather + ``np.repeat`` over the CSR
    arrays, never a per-arc Python tuple.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        assignment: np.ndarray,
        distance: np.ndarray,
    ) -> None:
        # CSR arrays arrive as whatever the engine's backend pinned: plain
        # arrays in-process, zero-copy shared-memory views on the process
        # backend (engine.pin_shared keeps them resident for the driver).
        self.indptr = indptr
        self.indices = indices
        self.assignment = assignment
        self.distance = distance

    def map_batch(self, batch: ArrayPairs) -> ArrayPairs:
        frontier = batch.keys
        src, dst, _ = kernels.gather_neighbors(self.indptr, self.indices, frontier)
        targets = np.unique(dst)
        target_states = np.column_stack(
            (
                np.full(targets.size, _STATE, dtype=np.int64),
                self.assignment[targets],
                self.distance[targets],
            )
        )
        # Claims flow only out of covered sources (always true for frontier
        # nodes in the driver loop, kept for exact reducer-input parity).
        covered = self.assignment[src] >= 0
        claim_src = src[covered]
        claims = np.column_stack(
            (
                np.full(claim_src.size, _CLAIM, dtype=np.int64),
                self.assignment[claim_src],
                self.distance[claim_src] + 1,
            )
        )
        keys = np.concatenate((batch.keys, targets, dst[covered]))
        values = np.concatenate((batch.values, target_states, claims))
        return ArrayPairs(keys, values)


class ClusterClaimReducer(StructuredReducer):
    """Per-node claim resolution of Algorithm 1 as a segment reduction.

    Each group mixes state rows ``(STATE, cluster_id, distance)`` with claim
    rows ``(CLAIM, cluster_id, distance)``.  A node whose state says it is
    covered (``cluster_id >= 0``) emits nothing; an uncovered node with at
    least one claim emits the claim minimizing ``(distance, cluster_id)``.
    The segment path evaluates this with ``logical_or.reduceat`` coverage
    masks plus one lexsort — zero per-key Python calls; :meth:`reference` is
    the per-key tuple-path twin the serial backend executes.
    """

    name = "cluster-claim"
    values_ndim = 2

    def segment_reduce(self, sorted_values, starts, ends):
        tags = sorted_values[:, 0]
        cluster_ids = sorted_values[:, 1]
        distances = sorted_values[:, 2]
        is_state = tags == _STATE
        covered = np.logical_or.reduceat(is_state & (cluster_ids >= 0), starts)
        has_claim = np.logical_or.reduceat(~is_state, starts)
        emit = ~covered & has_claim
        # Winning claim per segment: pack (is_state, distance, cluster_id)
        # into one int64 composite — state rows in the top bit so claims
        # always win — and take one minimum.reduceat; the winner's fields are
        # decoded straight from the composite, no sort needed.  The +1 shifts
        # make the -1 sentinels of uncovered state rows non-negative.
        dist_bits = max(1, int(distances.max() + 2).bit_length())
        cid_bits = max(1, int(cluster_ids.max() + 2).bit_length())
        if dist_bits + cid_bits <= 62:
            packed = (
                (is_state.astype(np.int64) << (dist_bits + cid_bits))
                | ((distances + 1) << cid_bits)
                | (cluster_ids + 1)
            )
            best = np.minimum.reduceat(packed, starts)
            win_cids = (best & ((np.int64(1) << cid_bits) - 1)) - 1
            win_dists = ((best >> cid_bits) & ((np.int64(1) << dist_bits) - 1)) - 1
        else:  # pragma: no cover - only reachable on astronomically large ids
            segment_ids = np.repeat(np.arange(starts.size), ends - starts)
            order = np.lexsort((cluster_ids, distances, is_state, segment_ids))
            winners = order[starts]
            win_cids = cluster_ids[winners]
            win_dists = distances[winners]
        rows = np.column_stack(
            (
                np.full(starts.size, _CLAIM, dtype=np.int64),
                win_cids,
                win_dists,
            )
        )
        return rows, emit

    def reference(self, key, values):
        covered = False
        best: Optional[Tuple[int, int]] = None
        for tag, cluster_id, dist in values:
            if tag == _STATE:
                if cluster_id >= 0:
                    covered = True
            elif best is None or (dist, cluster_id) < best:
                best = (dist, cluster_id)
        if covered or best is None:
            return
        yield (key, (_CLAIM, best[1], best[0]))


CLUSTER_CLAIM_REDUCER = register_structured_reducer(ClusterClaimReducer())


def _growing_round(
    engine: MREngine,
    indptr: np.ndarray,
    indices: np.ndarray,
    assignment: np.ndarray,
    distance: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """Execute one cluster-growing step as a structured MR round.

    Returns the array of newly covered nodes (the next frontier).
    """
    states = ArrayPairs(
        frontier,
        np.column_stack(
            (
                np.full(frontier.size, _STATE, dtype=np.int64),
                assignment[frontier],
                distance[frontier],
            )
        ),
    )
    accepted = engine.run_structured_round(
        states,
        CLUSTER_CLAIM_REDUCER,
        mapper=GrowingRoundMapper(indptr, indices, assignment, distance),
        label="native-growing-step",
    )
    nodes = accepted.keys
    fresh = assignment[nodes] < 0
    nodes = nodes[fresh]
    assignment[nodes] = accepted.values[fresh, 1]
    distance[nodes] = accepted.values[fresh, 2]
    return np.sort(nodes)


def mr_cluster_native(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    max_iterations: Optional[int] = None,
    backend: BackendSpec = "vectorized",
    num_shards: Optional[int] = None,
) -> Tuple[Clustering, MREngine]:
    """Run CLUSTER(τ) with every growing step executed as an MR round.

    Returns ``(clustering, engine)``; the engine carries the measured metrics.
    The covered-node sets evolve identically to :func:`repro.core.cluster.cluster`
    for the same seed (tie-breaking only affects ownership), so the cluster
    count, the centers and the number of growing steps coincide with the
    in-memory run; per-node growth distances are pointwise at most those of
    the in-memory run because the reducer accepts the lightest claim.

    ``backend`` / ``num_shards`` select how the structured rounds are
    physically executed (:mod:`repro.mapreduce.backends`): the ``vectorized``
    default is the segment-reduction fast path, ``serial`` the per-pair tuple
    path (the bit-compatibility reference), ``process`` the sharded pool.
    All backends produce the same clustering and the same metrics.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    n = graph.num_nodes
    assignment = np.full(n, -1, dtype=np.int64)
    distance = np.full(n, -1, dtype=np.int64)
    centers: List[int] = []
    frontier = np.zeros(0, dtype=np.int64)
    iterations: List[IterationStats] = []
    total_steps = 0

    if n == 0:
        return (
            Clustering(
                num_nodes=0,
                assignment=assignment,
                centers=np.zeros(0, dtype=np.int64),
                distance=distance,
                algorithm="cluster-mr-native",
            ),
            engine,
        )

    threshold = uncovered_threshold(n, tau)
    limit = max_iterations if max_iterations is not None else int(4 * math.log2(max(2, n))) + 8
    iteration = 0

    def add_centers(nodes: np.ndarray) -> np.ndarray:
        accepted = nodes[assignment[nodes] < 0]
        if accepted.size == 0:
            return accepted
        ids = np.arange(len(centers), len(centers) + accepted.size, dtype=np.int64)
        assignment[accepted] = ids
        distance[accepted] = 0
        centers.extend(int(v) for v in accepted)
        return accepted

    # The graph's CSR arrays back every growing round of the driver: pin them
    # once into the backend's shared data plane (zero-copy shared-memory
    # views on the process backend, the arrays themselves elsewhere) and
    # release the residency when the driver's round loop ends.
    pinned = engine.pin_shared(
        "cluster-csr", {"indptr": graph.indptr, "indices": graph.indices}
    )
    indptr, indices = pinned["indptr"], pinned["indices"]

    try:
        while True:
            uncovered = np.flatnonzero(assignment < 0)
            if uncovered.size < threshold or uncovered.size == 0:
                break
            if iteration >= limit:
                break
            probability = selection_probability(n, tau, int(uncovered.size))
            mask = random_subset_mask(int(uncovered.size), probability, rng)
            selected = np.unique(uncovered[mask])
            if selected.size == 0 and not centers:
                selected = rng.choice(uncovered, size=1)
            # Center selection / coverage counting: one bookkeeping round.
            engine.charge_rounds(1, pairs_per_round=int(uncovered.size), label="native-center-selection")
            accepted = add_centers(selected)
            frontier = np.unique(np.concatenate([frontier, accepted]))
            target = int(math.ceil(uncovered.size / 2.0))
            covered_at_start = int(np.count_nonzero(assignment >= 0)) - int(accepted.size)
            steps = 0
            while int(np.count_nonzero(assignment >= 0)) - covered_at_start < target:
                new_frontier = _growing_round(engine, indptr, indices, assignment, distance, frontier)
                steps += 1
                total_steps += 1
                if new_frontier.size == 0:
                    frontier = np.zeros(0, dtype=np.int64)
                    break
                frontier = new_frontier
            iterations.append(
                IterationStats(
                    iteration=iteration,
                    uncovered_before=int(uncovered.size),
                    new_centers=int(accepted.size),
                    growth_steps=steps,
                    covered_after=int(np.count_nonzero(assignment >= 0)),
                    selection_probability=probability,
                )
            )
            iteration += 1
    finally:
        engine.release_pins()

    # Final singleton promotion.
    leftovers = np.flatnonzero(assignment < 0)
    if leftovers.size:
        add_centers(leftovers)

    clustering = Clustering(
        num_nodes=n,
        assignment=assignment.copy(),
        centers=np.asarray(centers, dtype=np.int64),
        distance=distance.copy(),
        growth_steps=total_steps,
        iterations=iterations,
        algorithm="cluster-mr-native",
    )
    return clustering, engine
