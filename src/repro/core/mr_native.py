"""CLUSTER executed natively as MapReduce rounds (reference implementation).

:mod:`repro.core.mr_algorithms` meters the *cost* of the fast in-memory
implementation by replaying its execution trace.  This module goes one step
further and actually *executes* Algorithm 1 as map-shuffle-reduce rounds on
the :class:`~repro.mapreduce.engine.MREngine`, the way the paper's Section 5
describes the distributed implementation:

* the graph lives as ``(node, adjacency_list)`` pairs;
* the cluster state lives as ``(node, (cluster_id, distance))`` pairs;
* one growing step is one round: the mapper sends a *claim*
  ``(neighbour, (cluster_id, distance + 1))`` along every arc leaving the
  current frontier, and the reducer of an uncovered node accepts one claim
  (the smallest, an arbitrary-but-deterministic tie-break) while covered
  nodes ignore claims;
* center selection and the coverage count are driver-side bookkeeping charged
  as one round per iteration (a prefix-sum in the model).

Because the *set* of nodes covered by a growing step does not depend on which
claimant wins a tie, the native execution covers exactly the same node set per
step as the in-memory implementation for the same seed, yielding the same
centers, cluster count and step count; only the ownership tie-breaks differ
(the native reducer accepts the lightest claim, so per-node growth distances
can only shrink).  The test-suite cross-checks the two planes.

This implementation favours clarity over speed (it shuffles Python tuples one
by one) and is intended for moderate graph sizes; the library API and the
experiment harness use the vectorized implementation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cluster import selection_probability, uncovered_threshold
from repro.core.clustering import Clustering, IterationStats
from repro.graph.csr import CSRGraph
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.model import MRModel
from repro.utils.rng import SeedLike, as_rng, random_subset_mask

__all__ = ["mr_cluster_native"]

_STATE = "state"
_CLAIM = "claim"


def _growing_round(
    engine: MREngine,
    graph: CSRGraph,
    assignment: np.ndarray,
    distance: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """Execute one cluster-growing step as a genuine MR round.

    Returns the array of newly covered nodes (the next frontier).
    """
    # Input pairs: the state of every frontier node plus, for claim routing,
    # one pair per arc leaving the frontier (produced by the mapper below).
    pairs: List[Tuple[int, tuple]] = [
        (int(v), (_STATE, int(assignment[v]), int(distance[v]))) for v in frontier
    ]
    # Target states are needed so the reducer knows whether a node is covered;
    # ship the state of every node that could receive a claim.
    _, potential_targets = graph.neighbor_blocks(frontier)
    for v in np.unique(potential_targets):
        pairs.append((int(v), (_STATE, int(assignment[v]), int(distance[v]))))

    adjacency = {int(v): graph.neighbors(int(v)).tolist() for v in frontier}

    def mapper(key, value):
        kind = value[0]
        yield (key, value)
        if kind == _STATE and key in adjacency and value[1] >= 0:
            cluster_id, dist = value[1], value[2]
            for neighbour in adjacency[key]:
                yield (int(neighbour), (_CLAIM, cluster_id, dist + 1))

    def reducer(key, values):
        state = None
        claims = []
        for value in values:
            if value[0] == _STATE:
                # Several identical state copies may arrive; keep one.
                state = value if state is None else state
            else:
                claims.append(value)
        if state is not None and state[1] >= 0:
            return  # already covered: ignore claims, state is unchanged elsewhere
        if claims:
            _, cluster_id, dist = min(claims, key=lambda c: (c[2], c[1]))
            yield (key, (_CLAIM, cluster_id, dist))

    accepted = engine.run_round(pairs, reducer, mapper=mapper, label="native-growing-step")
    new_nodes = []
    for node, (_, cluster_id, dist) in accepted:
        if assignment[node] < 0:
            assignment[node] = cluster_id
            distance[node] = dist
            new_nodes.append(node)
    return np.asarray(sorted(new_nodes), dtype=np.int64)


def mr_cluster_native(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    max_iterations: Optional[int] = None,
    backend: BackendSpec = "serial",
    num_shards: Optional[int] = None,
) -> Tuple[Clustering, MREngine]:
    """Run CLUSTER(τ) with every growing step executed as an MR round.

    Returns ``(clustering, engine)``; the engine carries the measured metrics.
    The covered-node sets evolve identically to :func:`repro.core.cluster.cluster`
    for the same seed (tie-breaking only affects ownership), so the cluster
    count, the centers and the number of growing steps coincide with the
    in-memory run; per-node growth distances are pointwise at most those of
    the in-memory run because the reducer accepts the lightest claim.

    ``backend`` / ``num_shards`` select how the rounds are physically executed
    (:mod:`repro.mapreduce.backends`); all backends produce the same clustering
    and the same metrics.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    n = graph.num_nodes
    assignment = np.full(n, -1, dtype=np.int64)
    distance = np.full(n, -1, dtype=np.int64)
    centers: List[int] = []
    frontier = np.zeros(0, dtype=np.int64)
    iterations: List[IterationStats] = []
    total_steps = 0

    if n == 0:
        return (
            Clustering(
                num_nodes=0,
                assignment=assignment,
                centers=np.zeros(0, dtype=np.int64),
                distance=distance,
                algorithm="cluster-mr-native",
            ),
            engine,
        )

    threshold = uncovered_threshold(n, tau)
    limit = max_iterations if max_iterations is not None else int(4 * math.log2(max(2, n))) + 8
    iteration = 0

    def add_centers(nodes: np.ndarray) -> np.ndarray:
        accepted = nodes[assignment[nodes] < 0]
        if accepted.size == 0:
            return accepted
        ids = np.arange(len(centers), len(centers) + accepted.size, dtype=np.int64)
        assignment[accepted] = ids
        distance[accepted] = 0
        centers.extend(int(v) for v in accepted)
        return accepted

    while True:
        uncovered = np.flatnonzero(assignment < 0)
        if uncovered.size < threshold or uncovered.size == 0:
            break
        if iteration >= limit:
            break
        probability = selection_probability(n, tau, int(uncovered.size))
        mask = random_subset_mask(int(uncovered.size), probability, rng)
        selected = np.unique(uncovered[mask])
        if selected.size == 0 and not centers:
            selected = rng.choice(uncovered, size=1)
        # Center selection / coverage counting: one bookkeeping round.
        engine.charge_rounds(1, pairs_per_round=int(uncovered.size), label="native-center-selection")
        accepted = add_centers(selected)
        frontier = np.unique(np.concatenate([frontier, accepted]))
        target = int(math.ceil(uncovered.size / 2.0))
        covered_at_start = int(np.count_nonzero(assignment >= 0)) - int(accepted.size)
        steps = 0
        while int(np.count_nonzero(assignment >= 0)) - covered_at_start < target:
            new_frontier = _growing_round(engine, graph, assignment, distance, frontier)
            steps += 1
            total_steps += 1
            if new_frontier.size == 0:
                frontier = np.zeros(0, dtype=np.int64)
                break
            frontier = new_frontier
        iterations.append(
            IterationStats(
                iteration=iteration,
                uncovered_before=int(uncovered.size),
                new_centers=int(accepted.size),
                growth_steps=steps,
                covered_after=int(np.count_nonzero(assignment >= 0)),
                selection_probability=probability,
            )
        )
        iteration += 1

    # Final singleton promotion.
    leftovers = np.flatnonzero(assignment < 0)
    if leftovers.size:
        add_centers(leftovers)

    clustering = Clustering(
        num_nodes=n,
        assignment=assignment.copy(),
        centers=np.asarray(centers, dtype=np.int64),
        distance=distance.copy(),
        growth_steps=total_steps,
        iterations=iterations,
        algorithm="cluster-mr-native",
    )
    return clustering, engine
