"""End-to-end decomposition pipeline: decompose → quotient → diameter bounds.

Every consumer of the decomposition machinery — the diameter-approximation
experiments (Tables 3/4, Figure 1), the MR-accounting drivers, and any future
serving workload — runs the same three-stage chain:

1. **decompose** the graph with a growth-engine algorithm (CLUSTER, CLUSTER2,
   MPX, or the single-batch baseline, selected by
   :attr:`PipelineConfig.method`),
2. build the (weighted and/or unweighted) **quotient** graph of the
   decomposition, and
3. compute the **diameter bounds** ``∆_C ≤ ∆ ≤ ∆''`` of Section 4.

:class:`DecompositionPipeline` implements that chain once, with every
intermediate result cached on the pipeline object so repeated or partial
queries (e.g. the same decomposition under several quotient flavours, or a
diameter estimate followed by MR-round accounting) never recompute a stage.
Per-stage wall-clock timings are recorded in :attr:`DecompositionPipeline.timings`;
with ``REPRO_KERNEL_STATS=1`` each stage additionally records its frontier-kernel
counter deltas (levels by direction, edges scanned, direction switches — see
:mod:`repro.graph.kernels`) in :attr:`DecompositionPipeline.kernel_stats`, and
:meth:`PipelineResult.summary` flattens them as ``ks_<stage>_<counter>`` columns.

:func:`repro.core.diameter.estimate_diameter` and
:func:`repro.core.mr_algorithms.mr_estimate_diameter` are thin wrappers over
this pipeline, so the experiment harness and the CLI drive one API.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.clustering import Clustering
from repro.core.quotient import QuotientGraph, build_quotient_graph, quotient_diameter
from repro.graph import kernels
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.model import MRModel
from repro.utils.rng import SeedLike, as_rng

__all__ = ["PipelineConfig", "PipelineResult", "DecompositionPipeline"]

#: Decomposition algorithms selectable by :attr:`PipelineConfig.method`.
PIPELINE_METHODS = ("cluster", "cluster2", "mpx", "single-batch", "weighted")


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of a :class:`DecompositionPipeline`.

    Attributes
    ----------
    method:
        Decomposition algorithm: ``"cluster"`` (Algorithm 1, the simplified
        version used in the paper's experiments), ``"cluster2"`` (Algorithm 2,
        full guarantees), ``"mpx"`` (the random-shift baseline),
        ``"single-batch"`` (all centers up front — the ablation strawman), or
        ``"weighted"`` (the §7 hop-bounded weighted decomposition; the input
        graph is coerced to a :class:`~repro.weighted.wgraph.WeightedCSRGraph`
        — unweighted inputs are lifted with unit edge weights — and the
        diameter stage reports weighted bounds).
    tau:
        Granularity parameter for cluster/cluster2 (default:
        :func:`repro.core.diameter.default_tau`).
    target_clusters:
        Tune the granularity (τ or β) so the decomposition lands near this
        cluster count instead of fixing it a priori (the §6 protocol).  At
        most one of ``tau`` / ``target_clusters`` may be set.
    beta:
        Shift rate for ``method="mpx"`` (default ``0.1``) when
        ``target_clusters`` is not given.
    seed:
        Randomness for the decomposition stage.
    weighted_quotient:
        Also build the weighted quotient graph and report the tighter ``∆''``
        upper bound (the number used in Tables 3 and 4).
    enforce_local_memory:
        Enforce the Theorem 4 requirement that the quotient graph fits in one
        reducer's local memory during MR accounting.
    mr_backend / mr_shards:
        Execution backend for the MR accounting engine.
    """

    method: str = "cluster"
    tau: Optional[int] = None
    target_clusters: Optional[int] = None
    beta: Optional[float] = None
    seed: SeedLike = None
    weighted_quotient: bool = True
    enforce_local_memory: bool = False
    mr_backend: BackendSpec = "serial"
    mr_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in PIPELINE_METHODS:
            raise ValueError(
                f"unknown pipeline method {self.method!r}; choose from {PIPELINE_METHODS}"
            )
        if self.tau is not None and self.target_clusters is not None:
            raise ValueError("provide at most one of tau, target_clusters")


@dataclass(frozen=True)
class PipelineResult:
    """Materialized output of a full pipeline run.

    ``estimate`` is the Section 4 diameter estimate; ``timings`` maps stage
    names to seconds spent computing them.  The entries are disjoint — each
    covers only its own work (a ``quotient[...]`` entry includes that
    quotient's build and its diameter BFS; cache hits cost nothing).
    """

    method: str
    clustering: Clustering
    estimate: "DiameterEstimate"  # noqa: F821 - forward ref, resolved lazily
    timings: Dict[str, float] = field(default_factory=dict)
    #: per-stage kernel counter deltas (``REPRO_KERNEL_STATS=1`` runs only)
    kernel_stats: Optional[Dict[str, Dict[str, int]]] = None

    def summary(self) -> dict:
        """Compact row used by the experiment tables.

        When the run collected kernel counters (``REPRO_KERNEL_STATS=1``)
        each stage's deltas are flattened in as ``ks_<stage>_<counter>``
        columns; otherwise the row is unchanged.
        """
        row = {
            "method": self.method,
            "num_clusters": self.clustering.num_clusters,
            "radius": self.estimate.radius,
            "lower_bound": self.estimate.lower_bound,
            "upper_bound": self.estimate.upper_bound,
            "quotient_edges": self.estimate.num_quotient_edges,
            **{f"t_{stage}": round(secs, 4) for stage, secs in sorted(self.timings.items())},
        }
        if self.kernel_stats:
            for stage, counters in sorted(self.kernel_stats.items()):
                for counter, value in sorted(counters.items()):
                    row[f"ks_{stage}_{counter}"] = value
        return row


class _StageScope:
    """Times one pipeline stage; with ``REPRO_KERNEL_STATS=1`` it also diffs
    the kernel counters so each stage's frontier activity (levels by
    direction, edges scanned, switches, msbfs sweeps) lands next to its
    wall-clock in :attr:`DecompositionPipeline.kernel_stats`."""

    __slots__ = ("pipeline", "stage", "start", "before")

    def __init__(self, pipeline: "DecompositionPipeline", stage: str) -> None:
        self.pipeline = pipeline
        self.stage = stage

    def __enter__(self) -> "_StageScope":
        self.start = time.perf_counter()
        self.before = (
            kernels.kernel_stats_snapshot() if kernels.kernel_stats_enabled() else None
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self.start
        timings = self.pipeline.timings
        timings[self.stage] = timings.get(self.stage, 0.0) + elapsed
        if self.before is not None and exc_type is None:
            after = kernels.kernel_stats_snapshot()
            aggregate = self.pipeline.kernel_stats.setdefault(self.stage, {})
            for counter, value in after.items():
                aggregate[counter] = aggregate.get(counter, 0) + value - self.before[counter]
        return False


class DecompositionPipeline:
    """Configurable decompose → quotient → diameter chain with stage caching.

    Usage::

        pipe = DecompositionPipeline(graph, PipelineConfig(method="cluster", tau=4, seed=0))
        clustering = pipe.decompose()        # stage 1 (cached)
        estimate = pipe.diameter()           # stages 2+3 (cached)
        report = pipe.mr_report()            # MR accounting over cached stages
        result = pipe.run()                  # everything, as a PipelineResult

    An existing decomposition can be injected to skip stage 1 (e.g. to price
    several quotient flavours of one clustering)::

        pipe = DecompositionPipeline(graph, clustering=my_clustering)
    """

    def __init__(
        self,
        graph,
        config: Optional[PipelineConfig] = None,
        *,
        clustering: Optional[Clustering] = None,
        **overrides,
    ) -> None:
        config = config if config is not None else PipelineConfig()
        if overrides:
            config = dataclasses.replace(config, **overrides)
        if config.method == "weighted":
            from repro.weighted.wgraph import as_weighted

            graph = as_weighted(graph)
        self.graph = graph
        self.config = config
        self.timings: Dict[str, float] = {}
        self.kernel_stats: Dict[str, Dict[str, int]] = {}
        self._clustering: Optional[Clustering] = clustering
        self._quotients: Dict[bool, QuotientGraph] = {}
        self._quotient_diameters: Dict[bool, float] = {}
        self._estimate = None

    # ------------------------------------------------------------------ #
    # Stage 1: decomposition
    # ------------------------------------------------------------------ #
    def decompose(self) -> Clustering:
        """Run (or return the cached) decomposition stage."""
        if self._clustering is None:
            with _StageScope(self, "decompose"):
                self._clustering = self._run_decomposition()
        return self._clustering

    def _run_decomposition(self) -> Clustering:
        from repro.baselines.mpx import mpx_decomposition, mpx_with_target_clusters
        from repro.core.cluster import cluster, cluster_with_target_clusters
        from repro.core.cluster2 import cluster2
        from repro.core.diameter import default_tau

        cfg = self.config
        rng = as_rng(cfg.seed)
        if cfg.method == "weighted":
            from repro.weighted.decomposition import (
                weighted_cluster,
                weighted_cluster_with_target_clusters,
            )

            if cfg.target_clusters is not None:
                return weighted_cluster_with_target_clusters(
                    self.graph, cfg.target_clusters, seed=rng
                )
            tau = cfg.tau if cfg.tau is not None else default_tau(self.graph)
            return weighted_cluster(self.graph, tau, seed=rng)
        if cfg.method == "mpx":
            if cfg.target_clusters is not None:
                return mpx_with_target_clusters(self.graph, cfg.target_clusters, seed=rng)
            return mpx_decomposition(self.graph, cfg.beta if cfg.beta is not None else 0.1, seed=rng)
        if cfg.method == "single-batch":
            from repro.experiments.ablations import single_batch_decomposition

            num_centers = cfg.target_clusters if cfg.target_clusters is not None else (
                cfg.tau if cfg.tau is not None else default_tau(self.graph)
            )
            return single_batch_decomposition(self.graph, num_centers, seed=rng)
        if cfg.target_clusters is not None:
            pilot = cluster_with_target_clusters(self.graph, cfg.target_clusters, seed=rng)
            if cfg.method == "cluster2":
                # §6.2 protocol at a target granularity: reuse the tuned
                # CLUSTER run as the pilot estimating R_ALG, then run the
                # geometric refinement.
                return cluster2(self.graph, 1, seed=rng, pilot=pilot).clustering
            return pilot
        tau = cfg.tau if cfg.tau is not None else default_tau(self.graph)
        if cfg.method == "cluster2":
            return cluster2(self.graph, tau, seed=rng).clustering
        return cluster(self.graph, tau, seed=rng)

    # ------------------------------------------------------------------ #
    # Stage 2: quotient graph(s)
    # ------------------------------------------------------------------ #
    def quotient(self, *, weighted: bool = True) -> QuotientGraph:
        """Build (or return the cached) quotient graph of the decomposition.

        For a weighted decomposition the ``weighted=True`` flavour carries
        genuine center-to-center path lengths
        (:func:`repro.weighted.applications.build_weighted_quotient`); the
        ``weighted=False`` flavour is the hop-metric quotient of the same
        clustering.
        """
        if weighted not in self._quotients:
            clustering = self.decompose()
            with _StageScope(self, f"quotient[{'weighted' if weighted else 'unweighted'}]"):
                if weighted and self._is_weighted_run(clustering):
                    from repro.weighted.applications import build_weighted_quotient

                    self._quotients[weighted] = build_weighted_quotient(
                        self.graph, clustering
                    )
                else:
                    self._quotients[weighted] = build_quotient_graph(
                        self.graph, clustering, weighted=weighted
                    )
        return self._quotients[weighted]

    @staticmethod
    def _is_weighted_run(clustering) -> bool:
        """Whether the decomposition carries weighted growth distances."""
        return getattr(clustering, "weighted_distance", None) is not None

    def quotient_diameter(self, *, weighted: bool = True) -> float:
        """Diameter of the (cached) quotient graph.

        The BFS time is accumulated into the same ``quotient[...]`` timing
        entry as the build, so each entry covers that quotient flavour's full
        cost and the stage timings partition the pipeline's wall-clock.
        """
        if weighted not in self._quotient_diameters:
            quotient = self.quotient(weighted=weighted)
            key = f"quotient[{'weighted' if weighted else 'unweighted'}]"
            with _StageScope(self, key):
                self._quotient_diameters[weighted] = quotient_diameter(quotient)
        return self._quotient_diameters[weighted]

    # ------------------------------------------------------------------ #
    # Stage 3: diameter bounds
    # ------------------------------------------------------------------ #
    def diameter(self):
        """Compute (or return the cached) diameter estimate.

        Unweighted decompositions report the Section 4 bounds
        (:class:`~repro.core.diameter.DiameterEstimate`); weighted
        decompositions report the §7 weighted bounds
        (:class:`~repro.weighted.applications.WeightedDiameterEstimate`:
        weighted double-sweep lower bound, ``2·R_w + ∆'_C`` upper bound).
        """
        from repro.core.diameter import DiameterEstimate, diameter_upper_bounds

        if self._estimate is None:
            clustering = self.decompose()
            if self._is_weighted_run(clustering):
                self._estimate = self._weighted_diameter(clustering)
                return self._estimate
            radius = clustering.max_radius
            lower = self.quotient_diameter(weighted=False)
            weighted_diam: Optional[float] = None
            num_quotient_edges = self.quotient(weighted=False).num_edges
            if self.config.weighted_quotient:
                weighted_diam = self.quotient_diameter(weighted=True)
                num_quotient_edges = self.quotient(weighted=True).num_edges
            # Sub-stages above record their own timings; "diameter" covers
            # only the bound assembly so the stage entries stay disjoint.
            with _StageScope(self, "diameter"):
                unweighted_upper, weighted_upper = diameter_upper_bounds(
                    lower, radius, weighted_diam
                )
                upper = (
                    weighted_upper if weighted_upper is not None else float(unweighted_upper)
                )
                self._estimate = DiameterEstimate(
                    lower_bound=int(lower),
                    upper_bound=upper,
                    upper_bound_unweighted=unweighted_upper,
                    upper_bound_weighted=weighted_upper,
                    radius=radius,
                    num_clusters=clustering.num_clusters,
                    num_quotient_edges=num_quotient_edges,
                    clustering=clustering,
                )
        return self._estimate

    def _weighted_diameter(self, clustering):
        """Assemble the §7 weighted diameter bounds from the cached stages."""
        from repro.weighted.applications import WeightedDiameterEstimate
        from repro.weighted.traversal import weighted_double_sweep

        quotient = self.quotient(weighted=True)
        if quotient.num_nodes <= 1 or quotient.num_edges == 0:
            quotient_diam = 0.0
        else:
            quotient_diam = self.quotient_diameter(weighted=True)
        with _StageScope(self, "diameter"):
            lower, _, _ = weighted_double_sweep(self.graph, rng=as_rng(self.config.seed))
            upper = 2.0 * clustering.weighted_radius + float(quotient_diam)
            estimate = WeightedDiameterEstimate(
                lower_bound=float(lower),
                upper_bound=float(upper),
                weighted_radius=clustering.weighted_radius,
                hop_radius=clustering.hop_radius,
                num_clusters=clustering.num_clusters,
                clustering=clustering,
                num_quotient_edges=quotient.num_edges,
            )
        return estimate

    # ------------------------------------------------------------------ #
    # MR accounting over the cached stages
    # ------------------------------------------------------------------ #
    def mr_report(
        self,
        *,
        model: Optional[MRModel] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        include_quotient: bool = True,
    ):
        """Account for the pipeline's execution in the MR(M_G, M_L) model.

        Charges the decomposition's growth trace, plus (by default) the
        quotient-build and quotient-diameter rounds, against an
        :class:`~repro.mapreduce.engine.MREngine` configured with the
        pipeline's backend; returns an
        :class:`~repro.core.mr_algorithms.MRExecutionReport`.
        """
        from repro.core.mr_algorithms import (
            MRExecutionReport,
            charge_clustering_rounds,
            charge_quotient_rounds,
        )

        estimate = self.diameter() if include_quotient else None
        clustering = self.decompose()
        # Prerequisite stages above record their own timings; "mr-accounting"
        # covers only the round-charging replay.
        with _StageScope(self, "mr-accounting"):
            engine = MREngine(
                model=model if model is not None else MRModel(enforce=False),
                backend=self.config.mr_backend,
                num_shards=self.config.mr_shards,
            )
            if include_quotient:
                charge_clustering_rounds(engine, estimate.clustering)
                charge_quotient_rounds(
                    engine,
                    self.graph,
                    num_quotient_edges=estimate.num_quotient_edges,
                    enforce_local_memory=self.config.enforce_local_memory,
                )
            else:
                charge_clustering_rounds(engine, clustering)
        return MRExecutionReport(
            estimate=estimate,
            clustering=clustering,
            metrics=engine.metrics,
            simulated_time=cost_model.simulated_time(engine.metrics),
        )

    # ------------------------------------------------------------------ #
    def run(self) -> PipelineResult:
        """Execute every stage and return the materialized result."""
        estimate = self.diameter()
        return PipelineResult(
            method=self.config.method,
            clustering=self.decompose(),
            estimate=estimate,
            timings=dict(self.timings),
            kernel_stats=(
                {stage: dict(counters) for stage, counters in self.kernel_stats.items()}
                if self.kernel_stats
                else None
            ),
        )
