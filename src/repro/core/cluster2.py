"""Algorithm 2 of the paper: CLUSTER2(τ).

CLUSTER2 refines CLUSTER for the diameter-approximation application: it first
runs CLUSTER(τ) to learn the maximum radius ``R_ALG`` achievable at that
granularity, then rebuilds the decomposition from scratch over ``log n``
iterations.  In iteration ``i`` every uncovered node becomes a new center
independently with probability ``2^i / n`` and all active clusters grow for
exactly ``2 R_ALG`` steps.  Both phases drive the shared
:class:`~repro.core.growth_engine.GrowthEngine`; the refinement phase is the
engine under a :class:`~repro.core.growth_engine.GeometricSchedule`.

The smooth (geometric) growth of the selection probability together with the
fixed lower bound on the number of growing steps per iteration is what makes
Theorem 3 work: every shortest path of G intersects only
``O(⌈|π| / R_ALG⌉ log² n)`` clusters, so the quotient-graph diameter is a
faithful (polylog-factor) proxy for the true diameter.

Lemma 2: the result has ``O(τ log⁴ n)`` clusters of radius at most
``2 R_ALG log n``, with high probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cluster import cluster
from repro.core.clustering import Clustering
from repro.core.growth_engine import GeometricSchedule, GrowthEngine
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["cluster2", "Cluster2Result"]


@dataclass(frozen=True)
class Cluster2Result:
    """Output of CLUSTER2: the refined clustering plus the pilot CLUSTER run.

    Attributes
    ----------
    clustering:
        The decomposition produced by the ``log n`` refinement iterations.
    pilot:
        The CLUSTER(τ) decomposition used to estimate ``R_ALG``.
    r_alg:
        The maximum radius of the pilot decomposition (the per-iteration
        growth budget is ``2 * r_alg``).
    """

    clustering: Clustering
    pilot: Clustering
    r_alg: int

    @property
    def max_radius(self) -> int:
        """Maximum radius of the refined decomposition (``R_ALG2`` in the paper)."""
        return self.clustering.max_radius

    @property
    def num_clusters(self) -> int:
        return self.clustering.num_clusters


def cluster2(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    pilot: Optional[Clustering] = None,
) -> Cluster2Result:
    """Run CLUSTER2(τ) on ``graph``.

    Parameters
    ----------
    graph:
        Unweighted undirected graph.
    tau:
        Granularity parameter passed to the pilot CLUSTER run.
    seed:
        Randomness for both the pilot run and the refinement iterations.
    pilot:
        Optionally reuse an existing CLUSTER(τ) result instead of running the
        pilot again (the experiments of §6.2 use this "simplified version").

    Returns
    -------
    Cluster2Result
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    if pilot is None:
        pilot = cluster(graph, tau, seed=rng)
    r_alg = pilot.max_radius
    growth_budget = max(1, 2 * r_alg)

    engine = GrowthEngine(graph)
    if graph.num_nodes > 0:
        engine.run(GeometricSchedule(growth_budget, rng))
    # The final iteration selects every uncovered node as a center, so the
    # graph is fully covered by the schedule; the engine's closing singleton
    # promotion is a no-op kept for robustness (e.g. a pilot with radius 0).
    refined = engine.to_clustering(algorithm="cluster2")
    return Cluster2Result(clustering=refined, pilot=pilot, r_alg=r_alg)
