"""Algorithm 2 of the paper: CLUSTER2(τ).

CLUSTER2 refines CLUSTER for the diameter-approximation application: it first
runs CLUSTER(τ) to learn the maximum radius ``R_ALG`` achievable at that
granularity, then rebuilds the decomposition from scratch over ``log n``
iterations.  In iteration ``i`` every uncovered node becomes a new center
independently with probability ``2^i / n`` and all active clusters grow for
exactly ``2 R_ALG`` steps.

The smooth (geometric) growth of the selection probability together with the
fixed lower bound on the number of growing steps per iteration is what makes
Theorem 3 work: every shortest path of G intersects only
``O(⌈|π| / R_ALG⌉ log² n)`` clusters, so the quotient-graph diameter is a
faithful (polylog-factor) proxy for the true diameter.

Lemma 2: the result has ``O(τ log⁴ n)`` clusters of radius at most
``2 R_ALG log n``, with high probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cluster import cluster
from repro.core.clustering import Clustering, IterationStats
from repro.core.growth import ClusterGrowth
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng, random_subset_mask

__all__ = ["cluster2", "Cluster2Result"]


@dataclass(frozen=True)
class Cluster2Result:
    """Output of CLUSTER2: the refined clustering plus the pilot CLUSTER run.

    Attributes
    ----------
    clustering:
        The decomposition produced by the ``log n`` refinement iterations.
    pilot:
        The CLUSTER(τ) decomposition used to estimate ``R_ALG``.
    r_alg:
        The maximum radius of the pilot decomposition (the per-iteration
        growth budget is ``2 * r_alg``).
    """

    clustering: Clustering
    pilot: Clustering
    r_alg: int

    @property
    def max_radius(self) -> int:
        """Maximum radius of the refined decomposition (``R_ALG2`` in the paper)."""
        return self.clustering.max_radius

    @property
    def num_clusters(self) -> int:
        return self.clustering.num_clusters


def cluster2(
    graph: CSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    pilot: Optional[Clustering] = None,
) -> Cluster2Result:
    """Run CLUSTER2(τ) on ``graph``.

    Parameters
    ----------
    graph:
        Unweighted undirected graph.
    tau:
        Granularity parameter passed to the pilot CLUSTER run.
    seed:
        Randomness for both the pilot run and the refinement iterations.
    pilot:
        Optionally reuse an existing CLUSTER(τ) result instead of running the
        pilot again (the experiments of §6.2 use this "simplified version").

    Returns
    -------
    Cluster2Result
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    n = graph.num_nodes
    if pilot is None:
        pilot = cluster(graph, tau, seed=rng)
    r_alg = pilot.max_radius
    growth_budget = max(1, 2 * r_alg)

    growth = ClusterGrowth(graph)
    if n == 0:
        return Cluster2Result(clustering=growth.to_clustering("cluster2"), pilot=pilot, r_alg=r_alg)

    num_iterations = max(1, int(math.ceil(math.log2(max(2, n)))))
    for i in range(1, num_iterations + 1):
        if growth.num_uncovered == 0:
            break
        uncovered = growth.uncovered_nodes
        uncovered_before = int(uncovered.size)
        probability = min(1.0, (2.0 ** i) / n)
        if i == num_iterations:
            # Final iteration: the paper's probability 2^{log n}/n = 1 ensures
            # full coverage; guard against floating-point shortfall.
            probability = 1.0
        mask = random_subset_mask(uncovered_before, probability, rng)
        selected = uncovered[mask]
        growth.mark()
        accepted = growth.add_centers(selected)
        steps = 0
        if accepted.size or growth.num_clusters:
            covered_before_steps = growth.num_covered
            growth.grow_steps(growth_budget)
            steps = min(growth_budget, growth.num_steps)  # informational
            _ = covered_before_steps
        growth.record_iteration(
            IterationStats(
                iteration=i,
                uncovered_before=uncovered_before,
                new_centers=int(accepted.size),
                growth_steps=growth_budget if accepted.size or growth.num_clusters else 0,
                covered_after=growth.num_covered,
                selection_probability=probability,
            )
        )

    # The final iteration selects every uncovered node as a center, so the
    # graph is fully covered here; the singleton promotion is a no-op kept for
    # robustness (e.g. if a caller passes a pilot with radius 0).
    growth.cover_remaining_as_singletons()
    refined = growth.to_clustering(algorithm="cluster2")
    return Cluster2Result(clustering=refined, pilot=pilot, r_alg=r_alg)
