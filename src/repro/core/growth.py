"""Disjoint parallel cluster growing.

This module implements the single primitive every decomposition algorithm in
the paper is built from: a set of clusters, each with a center, grows
level-synchronously and *disjointly* — in each growing step every active
cluster extends its frontier by one hop, and when several clusters attempt to
cover the same node in the same step exactly one of them (arbitrarily chosen)
succeeds.

The implementation is fully vectorized: a growing step is one
``neighbor_blocks`` gather over the current frontier followed by a stable
sort that keeps a single claimant per newly covered node.  One growing step
corresponds to one (constant number of) MR round(s) in the distributed
implementation (Lemma 3), so the per-step statistics recorded here are what
the MR drivers convert into round/communication metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.clustering import Clustering, GrowthStepStats, IterationStats
from repro.graph.csr import CSRGraph

UNCOVERED = -1

__all__ = ["ClusterGrowth", "UNCOVERED"]


class ClusterGrowth:
    """Mutable state of a disjoint cluster-growing process.

    Typical usage (this is literally the inner loop of CLUSTER)::

        growth = ClusterGrowth(graph)
        growth.add_centers(first_batch)
        while growth.newly_covered_since_mark < target:
            if growth.grow_step() == 0:
                break
        ...
        clustering = growth.to_clustering()
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        n = graph.num_nodes
        self.assignment = np.full(n, UNCOVERED, dtype=np.int64)
        self.distance = np.full(n, UNCOVERED, dtype=np.int64)
        self.centers: List[int] = []
        self.frontier = np.zeros(0, dtype=np.int64)
        self.num_covered = 0
        self.num_steps = 0
        self.step_log: List[GrowthStepStats] = []
        self.iterations: List[IterationStats] = []
        self._mark_covered = 0

    # ------------------------------------------------------------------ #
    # Bookkeeping helpers
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_clusters(self) -> int:
        return len(self.centers)

    @property
    def num_uncovered(self) -> int:
        return self.num_nodes - self.num_covered

    @property
    def uncovered_nodes(self) -> np.ndarray:
        """Array of currently uncovered node ids."""
        return np.flatnonzero(self.assignment == UNCOVERED)

    def mark(self) -> None:
        """Remember the current coverage count (start of an outer iteration)."""
        self._mark_covered = self.num_covered

    @property
    def newly_covered_since_mark(self) -> int:
        """Nodes covered since the last :meth:`mark` call."""
        return self.num_covered - self._mark_covered

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def add_centers(self, nodes: Sequence[int]) -> np.ndarray:
        """Activate new singleton clusters centered at ``nodes``.

        Nodes that are already covered are ignored (they cannot become
        centers).  Returns the array of accepted center node ids.
        """
        candidate = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if candidate.size and (candidate.min() < 0 or candidate.max() >= self.num_nodes):
            raise IndexError("center node id out of range")
        accepted = candidate[self.assignment[candidate] == UNCOVERED]
        if accepted.size == 0:
            return accepted
        new_ids = np.arange(len(self.centers), len(self.centers) + accepted.size, dtype=np.int64)
        self.assignment[accepted] = new_ids
        self.distance[accepted] = 0
        self.centers.extend(int(v) for v in accepted)
        self.num_covered += int(accepted.size)
        self.frontier = np.concatenate([self.frontier, accepted])
        return accepted

    def grow_step(self) -> int:
        """Grow every active cluster by one hop; return #newly covered nodes.

        Ties (several clusters reaching the same node in the same step) are
        broken arbitrarily but deterministically: the claimant appearing first
        in the concatenated adjacency scan wins, which corresponds to the
        arbitrary choice allowed by the paper's Algorithm 1.
        """
        if self.frontier.size == 0:
            return 0
        src, dst = self.graph.neighbor_blocks(self.frontier)
        arcs_scanned = int(dst.size)
        frontier_size = int(self.frontier.size)
        newly = 0
        if dst.size:
            open_mask = self.assignment[dst] == UNCOVERED
            dst = dst[open_mask]
            src = src[open_mask]
            if dst.size:
                order = np.argsort(dst, kind="stable")
                dst_sorted = dst[order]
                src_sorted = src[order]
                first = np.ones(dst_sorted.size, dtype=bool)
                first[1:] = dst_sorted[1:] != dst_sorted[:-1]
                new_nodes = dst_sorted[first]
                parents = src_sorted[first]
                self.assignment[new_nodes] = self.assignment[parents]
                self.distance[new_nodes] = self.distance[parents] + 1
                self.num_covered += int(new_nodes.size)
                self.frontier = new_nodes
                newly = int(new_nodes.size)
            else:
                self.frontier = np.zeros(0, dtype=np.int64)
        else:
            self.frontier = np.zeros(0, dtype=np.int64)
        self.num_steps += 1
        self.step_log.append(
            GrowthStepStats(
                frontier_size=frontier_size,
                arcs_scanned=arcs_scanned,
                newly_covered=newly,
            )
        )
        return newly

    def grow_until(self, target_new_nodes: int, *, max_steps: Optional[int] = None) -> int:
        """Grow until at least ``target_new_nodes`` nodes are covered since the
        last :meth:`mark`, a step makes no progress, or ``max_steps`` is hit.

        Returns the number of growing steps executed.
        """
        steps = 0
        while self.newly_covered_since_mark < target_new_nodes:
            if max_steps is not None and steps >= max_steps:
                break
            covered = self.grow_step()
            steps += 1
            if covered == 0:
                break
        return steps

    def grow_steps(self, count: int) -> int:
        """Execute exactly ``count`` growing steps (stopping early only when the
        frontier dies out); returns the number of nodes covered."""
        covered = 0
        for _ in range(count):
            got = self.grow_step()
            covered += got
            if self.frontier.size == 0:
                break
        return covered

    def cover_remaining_as_singletons(self) -> np.ndarray:
        """Turn every still-uncovered node into a singleton cluster
        (the final statement of Algorithm 1)."""
        return self.add_centers(self.uncovered_nodes)

    def record_iteration(self, stats: IterationStats) -> None:
        """Append the statistics of one outer-loop iteration."""
        self.iterations.append(stats)

    # ------------------------------------------------------------------ #
    def to_clustering(self, algorithm: str = "cluster") -> Clustering:
        """Freeze the growth state into a :class:`Clustering` (requires full coverage)."""
        if self.num_covered != self.num_nodes:
            raise RuntimeError(
                f"cannot freeze clustering: {self.num_uncovered} nodes are still uncovered"
            )
        return Clustering(
            num_nodes=self.num_nodes,
            assignment=self.assignment.copy(),
            centers=np.asarray(self.centers, dtype=np.int64),
            distance=self.distance.copy(),
            growth_steps=self.num_steps,
            iterations=list(self.iterations),
            step_log=list(self.step_log),
            algorithm=algorithm,
        )
