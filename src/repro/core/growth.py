"""Backward-compatible alias for the unified growth engine.

The disjoint cluster-growing primitive used to live here as ``ClusterGrowth``;
it is now implemented once, for all metrics and algorithms, by
:class:`repro.core.growth_engine.GrowthEngine` (parameterized by a tie-break
policy and driven by a center-selection schedule).  ``ClusterGrowth`` remains
as an alias for callers that drive the low-level unweighted API directly.
"""

from __future__ import annotations

from repro.core.growth_engine import UNCOVERED, GrowthEngine

#: Alias kept for backward compatibility: ``ClusterGrowth(graph)`` is a
#: :class:`GrowthEngine` with the default arbitrary tie-break policy.
ClusterGrowth = GrowthEngine

__all__ = ["ClusterGrowth", "UNCOVERED"]
