"""The unified, policy-driven disjoint cluster-growing engine.

Every decomposition algorithm in the paper — CLUSTER (Algorithm 1), CLUSTER2
(Algorithm 2), the §7 weighted decomposition, the MPX baseline, and the
k-center applications — is built on one primitive: a set of clusters, each
with a center, grows level-synchronously and *disjointly*; in each growing
step every active cluster extends its frontier by one hop, and when several
clusters attempt to cover the same node in the same step exactly one of them
succeeds.  One growing step corresponds to a constant number of MR rounds
(Lemma 3), so the per-step statistics recorded here are what the MR drivers
in :mod:`repro.core.mr_algorithms` convert into round/communication metrics.

This module implements that primitive exactly once, parameterized by two
pluggable policies:

* a :class:`TieBreakPolicy` decides which claimant wins a contested node —
  :class:`ArbitraryTieBreak` (the paper's unweighted algorithms),
  :class:`MinWeightTieBreak` (the weighted decomposition: smallest accumulated
  weighted distance wins), or :class:`ShiftedStartTieBreak` (the
  continuous-time MPX semantics: the cluster whose center has the smallest
  shifted start time wins);
* a :class:`CenterSchedule` decides which new centers activate at the start
  of each outer iteration and how far the clusters grow before the next batch
  — :class:`BatchHalvingSchedule` (CLUSTER's ``4 τ log n / |uncovered|``
  batches grown until half the uncovered nodes are covered),
  :class:`GeometricSchedule` (CLUSTER2's ``2^i / n`` probabilities with a
  fixed ``2 R_ALG`` growth budget), :class:`ShiftActivationSchedule` (MPX's
  exponential-shift start times, one growing step per integer round), and
  :class:`StaticSchedule` (all centers up front, grown to exhaustion — plain
  multi-source growth, also the building block of the farthest-point k-center
  traversal via :func:`farthest_point_centers`).

The engine is fully vectorized on the shared kernels of
:mod:`repro.graph.kernels`: a growing step is one
:func:`~repro.graph.kernels.gather_neighbors` over the current frontier
followed by a :func:`~repro.graph.kernels.claim_first` /
:func:`~repro.graph.kernels.claim_min` resolution that keeps a single
claimant per newly covered node.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import Clustering, GrowthStepStats, IterationStats
from repro.graph import kernels
from repro.utils.rng import SeedLike, as_rng, random_subset_mask

UNCOVERED = -1

__all__ = [
    "UNCOVERED",
    "GrowthEngine",
    "TieBreakPolicy",
    "ArbitraryTieBreak",
    "MinWeightTieBreak",
    "ShiftedStartTieBreak",
    "CenterSchedule",
    "BatchHalvingSchedule",
    "GeometricSchedule",
    "ShiftActivationSchedule",
    "StaticSchedule",
    "multi_source_growth",
    "farthest_point_centers",
    "selection_probability",
    "uncovered_threshold",
]


# ---------------------------------------------------------------------------
# Tie-break policies
# ---------------------------------------------------------------------------
class TieBreakPolicy:
    """Decides which cluster claims a node contested within one growing step.

    A policy provides two hooks: :meth:`gather` produces the candidate claims
    ``(source, target, weight-or-None)`` for a frontier, and :meth:`resolve`
    keeps exactly one claim per contested target.  ``weighted`` marks whether
    the engine must maintain accumulated weighted distances.
    """

    name = "abstract"
    weighted = False

    def gather(
        self, graph, frontier: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Candidate claims for ``frontier``: ``(sources, targets, weights)``."""
        src, dst, _ = kernels.gather_neighbors(graph.indptr, graph.indices, frontier)
        return src, dst, None

    def resolve(
        self,
        engine: "GrowthEngine",
        src: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Keep one claim per target; returns ``(targets, parents, weights)``."""
        raise NotImplementedError


class ArbitraryTieBreak(TieBreakPolicy):
    """First claimant in the concatenated adjacency scan wins.

    This is the arbitrary-but-deterministic choice allowed by the paper's
    Algorithm 1 (and used by CLUSTER, CLUSTER2, MPX and multi-source BFS).
    """

    name = "arbitrary"

    def resolve(self, engine, src, dst, weight):
        new_nodes, parents = kernels.claim_first(dst, src, workspace=engine.claim_workspace)
        return new_nodes, parents, None


class MinWeightTieBreak(TieBreakPolicy):
    """The claim with the smallest accumulated weighted distance wins.

    Requires a weighted graph; this is the tie-break of the §7 hop-bounded
    weighted decomposition, keeping the weighted radius controlled while the
    hop radius (number of growing rounds) controls the parallel depth.
    """

    name = "min-weight"
    weighted = True

    def gather(self, graph, frontier):
        src, dst, positions = kernels.gather_neighbors(
            graph.indptr, graph.indices, frontier
        )
        return src, dst, graph.weights[positions]

    def resolve(self, engine, src, dst, weight):
        candidate = engine.weighted_distance[src] + weight
        # claim_min: primary key target node, secondary accumulated weight.
        return kernels.claim_min(dst, src, candidate, workspace=engine.claim_workspace)


class ShiftedStartTieBreak(TieBreakPolicy):
    """The claimant whose *center* has the smallest priority wins.

    With ``priority[u] = δ_max − δ_u`` (the MPX start times) this realizes the
    continuous-time MPX rule: a contested node joins the cluster of the center
    that started earliest, i.e. the center minimizing ``dist(u, v) − δ_u``
    restricted to the claims arriving in the same integer round.
    """

    name = "shifted-start"

    def __init__(self, priority: np.ndarray) -> None:
        self.priority = np.asarray(priority, dtype=np.float64)

    def resolve(self, engine, src, dst, weight):
        center_of = engine.centers_array[engine.assignment[src]]
        new_nodes, parents, _ = kernels.claim_min(
            dst, src, self.priority[center_of], workspace=engine.claim_workspace
        )
        return new_nodes, parents, None


_NAMED_TIE_BREAKS = {
    "arbitrary": ArbitraryTieBreak,
    "min-weight": MinWeightTieBreak,
}


def _as_tie_break(policy, graph) -> TieBreakPolicy:
    weighted_graph = getattr(graph, "weights", None) is not None
    if policy is None:
        return MinWeightTieBreak() if weighted_graph else ArbitraryTieBreak()
    if isinstance(policy, str):
        try:
            policy = _NAMED_TIE_BREAKS[policy]()
        except KeyError:
            raise ValueError(
                f"unknown tie-break policy {policy!r}; named policies: "
                f"{sorted(_NAMED_TIE_BREAKS)}"
            ) from None
    if policy.weighted != weighted_graph:
        raise ValueError(
            f"tie-break policy {policy.name!r} expects "
            f"{'a weighted' if policy.weighted else 'an unweighted'} graph, got "
            f"{type(graph).__name__} (use graph.unweighted() / "
            "WeightedCSRGraph.from_unit_graph to convert)"
        )
    return policy


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class GrowthEngine:
    """Mutable state of a disjoint cluster-growing process.

    Works on both :class:`~repro.graph.csr.CSRGraph` (hop metric) and
    :class:`~repro.weighted.wgraph.WeightedCSRGraph` (hop + weighted metric);
    the default tie-break policy is :class:`ArbitraryTieBreak` for the former
    and :class:`MinWeightTieBreak` for the latter.

    Low-level usage (this is literally the inner loop of CLUSTER)::

        engine = GrowthEngine(graph)
        engine.add_centers(first_batch)
        while engine.newly_covered_since_mark < target:
            if engine.grow_step() == 0:
                break
        clustering = engine.to_clustering()

    High-level usage drives a :class:`CenterSchedule`::

        clustering = GrowthEngine(graph).run(
            BatchHalvingSchedule(tau, rng)
        ).to_clustering("cluster")
    """

    def __init__(
        self,
        graph,
        *,
        tie_break: "TieBreakPolicy | str | None" = None,
        direction: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.tie_break = _as_tie_break(tie_break, graph)
        self.direction = direction
        n = graph.num_nodes
        self.assignment = np.full(n, UNCOVERED, dtype=np.int64)
        self.distance = np.full(n, UNCOVERED, dtype=np.int64)
        self.weighted_distance: Optional[np.ndarray] = (
            np.full(n, np.inf) if self.tie_break.weighted else None
        )
        self.centers: List[int] = []
        self.frontier = np.zeros(0, dtype=np.int64)
        self.num_covered = 0
        self.num_steps = 0
        self.step_log: List[GrowthStepStats] = []
        self.iterations: List[IterationStats] = []
        self._mark_covered = 0
        self._claim_workspace: Optional[kernels.ClaimWorkspace] = None
        self._direction_optimizer: Optional[kernels.DirectionOptimizer] = None

    @property
    def claim_workspace(self) -> kernels.ClaimWorkspace:
        """Shared scratch enabling the sort-free claims (lazily allocated)."""
        if self._claim_workspace is None:
            self._claim_workspace = kernels.ClaimWorkspace(self.num_nodes)
        return self._claim_workspace

    def _ensure_direction_optimizer(self) -> Optional[kernels.DirectionOptimizer]:
        """Direction-optimizing state, or None when pull mode is unavailable.

        Pull levels reproduce exactly the first-claimant rule, so they are
        only eligible for the plain :class:`ArbitraryTieBreak` (whose
        ``UNCOVERED`` sentinel also matches the optimizer's ``-1`` unvisited
        convention); weighted / shifted-start growth stays push-only.  Created
        lazily at the first growing step so the initial covered scan reflects
        every center added so far; later coverage flows through
        :meth:`~repro.graph.kernels.DirectionOptimizer.on_covered`.
        """
        if type(self.tie_break) is not ArbitraryTieBreak:
            return None
        if self._direction_optimizer is None:
            self._direction_optimizer = kernels.DirectionOptimizer(
                self.graph.indptr,
                self.graph.indices,
                self.assignment,
                degrees=self.graph.degrees,
                direction=self.direction,
            )
        return self._direction_optimizer

    # ------------------------------------------------------------------ #
    # Bookkeeping helpers
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_clusters(self) -> int:
        return len(self.centers)

    @property
    def num_uncovered(self) -> int:
        return self.num_nodes - self.num_covered

    @property
    def uncovered_nodes(self) -> np.ndarray:
        """Array of currently uncovered node ids."""
        return np.flatnonzero(self.assignment == UNCOVERED)

    @property
    def centers_array(self) -> np.ndarray:
        """The centers as an int64 array (``centers_array[assignment[v]]`` is
        the center node of ``v``'s cluster)."""
        return np.asarray(self.centers, dtype=np.int64)

    def mark(self) -> None:
        """Remember the current coverage count (start of an outer iteration)."""
        self._mark_covered = self.num_covered

    @property
    def newly_covered_since_mark(self) -> int:
        """Nodes covered since the last :meth:`mark` call."""
        return self.num_covered - self._mark_covered

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def add_centers(self, nodes: Sequence[int]) -> np.ndarray:
        """Activate new singleton clusters centered at ``nodes``.

        Nodes that are already covered are ignored (they cannot become
        centers).  Returns the array of accepted center node ids.
        """
        candidate = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if candidate.size and (candidate.min() < 0 or candidate.max() >= self.num_nodes):
            raise IndexError("center node id out of range")
        accepted = candidate[self.assignment[candidate] == UNCOVERED]
        if accepted.size == 0:
            return accepted
        new_ids = np.arange(len(self.centers), len(self.centers) + accepted.size, dtype=np.int64)
        self.assignment[accepted] = new_ids
        self.distance[accepted] = 0
        if self.weighted_distance is not None:
            self.weighted_distance[accepted] = 0.0
        self.centers.extend(int(v) for v in accepted)
        self.num_covered += int(accepted.size)
        self.frontier = np.concatenate([self.frontier, accepted])
        if self._direction_optimizer is not None:
            self._direction_optimizer.on_covered(accepted)
        return accepted

    def _apply_claims(
        self,
        new_nodes: np.ndarray,
        parents: np.ndarray,
        new_weights: Optional[np.ndarray],
        optimizer: Optional[kernels.DirectionOptimizer],
    ) -> int:
        """Commit one step's resolved claims to the growth state."""
        if new_nodes.size == 0:
            self.frontier = np.zeros(0, dtype=np.int64)
            return 0
        self.assignment[new_nodes] = self.assignment[parents]
        self.distance[new_nodes] = self.distance[parents] + 1
        if new_weights is not None:
            self.weighted_distance[new_nodes] = new_weights
        self.num_covered += int(new_nodes.size)
        self.frontier = new_nodes
        if optimizer is not None:
            optimizer.on_covered(new_nodes)
        return int(new_nodes.size)

    def grow_step(self) -> int:
        """Grow every active cluster by one hop; return #newly covered nodes.

        Contested nodes (several clusters reaching the same node in the same
        step) are resolved by the engine's :class:`TieBreakPolicy`.

        Each step runs either as a push gather + tie-break resolution or — for
        the plain arbitrary tie-break — as a direction-optimized pull scan
        over uncovered nodes (see :class:`~repro.graph.kernels.
        DirectionOptimizer`); both produce bit-identical claims, and the
        recorded ``arcs_scanned`` always charges the push-equivalent arc count
        so MR round accounting is independent of the execution direction.
        """
        if self.frontier.size == 0:
            return 0
        frontier_size = int(self.frontier.size)
        optimizer = self._ensure_direction_optimizer()
        if optimizer is not None and optimizer.choose(self.frontier) == "pull":
            # MR accounting stays the push-equivalent arc count (every arc
            # leaving the frontier is charged to the round, Lemma 3) — the
            # pull scan is a local-execution strategy, not an MR plan change.
            arcs_scanned = optimizer.frontier_arcs
            new_nodes, parents = optimizer.pull_expand(self.frontier)
            kernels.record_level_stats("pull", frontier_size, optimizer.last_pull_arcs)
            newly = self._apply_claims(new_nodes, parents, None, optimizer)
        else:
            src, dst, weight = self.tie_break.gather(self.graph, self.frontier)
            arcs_scanned = int(dst.size)
            kernels.record_level_stats("push", frontier_size, arcs_scanned)
            newly = 0
            if dst.size:
                open_mask = self.assignment[dst] == UNCOVERED
                dst = dst[open_mask]
                src = src[open_mask]
                if weight is not None:
                    weight = weight[open_mask]
                if dst.size:
                    new_nodes, parents, new_weights = self.tie_break.resolve(
                        self, src, dst, weight
                    )
                    newly = self._apply_claims(new_nodes, parents, new_weights, optimizer)
                else:
                    self.frontier = np.zeros(0, dtype=np.int64)
            else:
                self.frontier = np.zeros(0, dtype=np.int64)
        self.num_steps += 1
        self.step_log.append(
            GrowthStepStats(
                frontier_size=frontier_size,
                arcs_scanned=arcs_scanned,
                newly_covered=newly,
            )
        )
        return newly

    def grow_until(self, target_new_nodes: int, *, max_steps: Optional[int] = None) -> int:
        """Grow until at least ``target_new_nodes`` nodes are covered since the
        last :meth:`mark`, a step makes no progress, or ``max_steps`` is hit.

        Returns the number of growing steps executed.
        """
        steps = 0
        while self.newly_covered_since_mark < target_new_nodes:
            if max_steps is not None and steps >= max_steps:
                break
            covered = self.grow_step()
            steps += 1
            if covered == 0:
                break
        return steps

    def grow_steps(self, count: int) -> int:
        """Execute exactly ``count`` growing steps (stopping early only when the
        frontier dies out); returns the number of nodes covered."""
        covered = 0
        for _ in range(count):
            got = self.grow_step()
            covered += got
            if self.frontier.size == 0:
                break
        return covered

    def grow_to_exhaustion(self) -> int:
        """Grow until the graph is covered or no step makes progress; returns
        the number of growing steps executed."""
        steps = 0
        while self.num_uncovered > 0:
            steps += 1
            if self.grow_step() == 0:
                break
        return steps

    def cover_remaining_as_singletons(self) -> np.ndarray:
        """Turn every still-uncovered node into a singleton cluster
        (the final statement of Algorithm 1)."""
        return self.add_centers(self.uncovered_nodes)

    def record_iteration(self, stats: IterationStats) -> None:
        """Append the statistics of one outer-loop iteration."""
        self.iterations.append(stats)

    # ------------------------------------------------------------------ #
    # The unified outer loop
    # ------------------------------------------------------------------ #
    def run(self, schedule: "CenterSchedule") -> "GrowthEngine":
        """Drive the outer decompose loop of ``schedule`` to completion.

        Every iteration activates the schedule's next center batch, grows per
        the schedule's plan, and records an :class:`IterationStats` entry;
        afterwards any still-uncovered nodes are promoted to singleton
        clusters (unless the schedule opts out).  Returns ``self`` so callers
        can chain ``.to_clustering(...)``.
        """
        schedule.begin(self)
        iteration = schedule.first_iteration
        while schedule.should_run(self, iteration):
            uncovered_before = self.num_uncovered
            selected, probability = schedule.select_centers(self, iteration)
            self.mark()
            accepted = self.add_centers(selected)
            steps = schedule.grow(self, iteration, uncovered_before, accepted)
            self.record_iteration(
                IterationStats(
                    iteration=iteration,
                    uncovered_before=uncovered_before,
                    new_centers=int(accepted.size),
                    growth_steps=steps,
                    covered_after=self.num_covered,
                    selection_probability=probability,
                )
            )
            if schedule.after_iteration(self, iteration):
                break
            iteration += 1
        if schedule.promote_singletons:
            self.cover_remaining_as_singletons()
        return self

    # ------------------------------------------------------------------ #
    # Freezing
    # ------------------------------------------------------------------ #
    def to_clustering(self, algorithm: str = "cluster") -> Clustering:
        """Freeze the growth state into a :class:`Clustering` (requires full coverage)."""
        if self.num_covered != self.num_nodes:
            raise RuntimeError(
                f"cannot freeze clustering: {self.num_uncovered} nodes are still uncovered"
            )
        return Clustering(
            num_nodes=self.num_nodes,
            assignment=self.assignment.copy(),
            centers=self.centers_array,
            distance=self.distance.copy(),
            growth_steps=self.num_steps,
            iterations=list(self.iterations),
            step_log=list(self.step_log),
            algorithm=algorithm,
        )

    def to_weighted_clustering(self, algorithm: str = "weighted-cluster"):
        """Freeze a weighted run into a :class:`~repro.weighted.decomposition.WeightedClustering`."""
        from repro.weighted.decomposition import WeightedClustering

        if self.weighted_distance is None:
            raise RuntimeError("engine was not run with a weighted tie-break policy")
        if self.num_covered != self.num_nodes:
            raise RuntimeError(f"{self.num_uncovered} nodes still uncovered")
        return WeightedClustering(
            num_nodes=self.num_nodes,
            assignment=self.assignment.copy(),
            centers=self.centers_array,
            hop_distance=self.distance.copy(),
            weighted_distance=np.where(
                np.isfinite(self.weighted_distance), self.weighted_distance, 0.0
            ),
            growth_rounds=self.num_steps,
            iterations=list(self.iterations),
            step_log=list(self.step_log),
            algorithm=algorithm,
        )


# ---------------------------------------------------------------------------
# Center-selection schedules
# ---------------------------------------------------------------------------
class CenterSchedule:
    """Pluggable outer-loop policy for :meth:`GrowthEngine.run`.

    Subclasses control when the loop runs (:meth:`should_run`), which new
    centers activate each iteration (:meth:`select_centers`), and how far the
    clusters grow before the next batch (:meth:`grow`).  The engine handles
    all shared bookkeeping (marking, iteration statistics, final singleton
    promotion).
    """

    #: iteration index of the first outer iteration (CLUSTER2 counts from 1)
    first_iteration = 0
    #: promote still-uncovered nodes to singleton clusters after the loop
    promote_singletons = True

    def begin(self, engine: GrowthEngine) -> None:
        """One-time setup with access to the engine (graph size etc.)."""

    def should_run(self, engine: GrowthEngine, iteration: int) -> bool:
        """Whether to execute the outer iteration ``iteration``."""
        raise NotImplementedError

    def select_centers(
        self, engine: GrowthEngine, iteration: int
    ) -> Tuple[np.ndarray, float]:
        """New-center batch for this iteration plus the selection probability
        recorded in the iteration statistics (``nan`` if not applicable)."""
        raise NotImplementedError

    def grow(
        self,
        engine: GrowthEngine,
        iteration: int,
        uncovered_before: int,
        accepted: np.ndarray,
    ) -> int:
        """Grow the active clusters; returns the step count to record."""
        raise NotImplementedError

    def after_iteration(self, engine: GrowthEngine, iteration: int) -> bool:
        """Post-iteration hook; return True to stop the loop."""
        return False


def _log_n(num_nodes: int) -> float:
    """``log₂ n`` guarded against degenerate sizes (paper uses base-2 logs)."""
    return math.log2(max(2, num_nodes))


def uncovered_threshold(num_nodes: int, tau: int) -> float:
    """The ``8 τ log n`` stopping threshold of Algorithm 1's while loop."""
    return 8.0 * tau * _log_n(num_nodes)


def selection_probability(num_nodes: int, tau: int, num_uncovered: int) -> float:
    """The ``4 τ log n / |V - V'|`` center-selection probability (clamped to 1)."""
    if num_uncovered <= 0:
        return 0.0
    return min(1.0, 4.0 * tau * _log_n(num_nodes) / num_uncovered)


class BatchHalvingSchedule(CenterSchedule):
    """Algorithm 1's progressive batches (also the weighted §7 schedule).

    While more than ``8 τ log n`` nodes are uncovered, select every uncovered
    node as a new center independently with probability
    ``4 τ log n / |uncovered|`` and grow all clusters until at least half of
    the previously uncovered nodes become covered.
    """

    def __init__(
        self,
        tau: int,
        rng: SeedLike = None,
        *,
        max_iterations: Optional[int] = None,
    ) -> None:
        if tau < 1:
            raise ValueError(f"tau must be a positive integer, got {tau}")
        self.tau = tau
        self.rng = as_rng(rng)
        self.max_iterations = max_iterations
        self.threshold = 0.0
        self.limit = 0

    def begin(self, engine: GrowthEngine) -> None:
        n = engine.num_nodes
        self.threshold = uncovered_threshold(n, self.tau)
        self.limit = (
            self.max_iterations
            if self.max_iterations is not None
            else int(4 * _log_n(n)) + 8
        )

    def should_run(self, engine: GrowthEngine, iteration: int) -> bool:
        return (
            engine.num_uncovered >= self.threshold
            and engine.num_uncovered > 0
            and iteration < self.limit
        )

    def select_centers(self, engine: GrowthEngine, iteration: int):
        uncovered = engine.uncovered_nodes
        probability = selection_probability(engine.num_nodes, self.tau, int(uncovered.size))
        mask = random_subset_mask(int(uncovered.size), probability, self.rng)
        selected = uncovered[mask]
        if selected.size == 0 and engine.num_clusters == 0:
            # Degenerate (very unlikely) draw with no active clusters: force a
            # single random center so the process can make progress.
            selected = self.rng.choice(uncovered, size=1)
        return selected, probability

    def grow(self, engine, iteration, uncovered_before, accepted) -> int:
        target = int(math.ceil(uncovered_before / 2.0))
        return engine.grow_until(target)


class GeometricSchedule(CenterSchedule):
    """CLUSTER2's refinement iterations (Algorithm 2).

    Over ``log n`` iterations, iteration ``i`` activates every uncovered node
    with probability ``2^i / n`` and grows all clusters for exactly
    ``growth_budget = 2 R_ALG`` steps.  The final iteration forces probability
    1 so the graph ends fully covered.
    """

    first_iteration = 1

    def __init__(self, growth_budget: int, rng: SeedLike = None) -> None:
        if growth_budget < 1:
            raise ValueError(f"growth_budget must be >= 1, got {growth_budget}")
        self.growth_budget = growth_budget
        self.rng = as_rng(rng)
        self.num_iterations = 1
        self._n = 1

    def begin(self, engine: GrowthEngine) -> None:
        self._n = engine.num_nodes
        self.num_iterations = max(1, int(math.ceil(math.log2(max(2, self._n)))))

    def should_run(self, engine: GrowthEngine, iteration: int) -> bool:
        return iteration <= self.num_iterations and engine.num_uncovered > 0

    def select_centers(self, engine: GrowthEngine, iteration: int):
        probability = min(1.0, (2.0 ** iteration) / self._n)
        if iteration == self.num_iterations:
            # Final iteration: the paper's probability 2^{log n}/n = 1 ensures
            # full coverage; guard against floating-point shortfall.
            probability = 1.0
        uncovered = engine.uncovered_nodes
        mask = random_subset_mask(int(uncovered.size), probability, self.rng)
        return uncovered[mask], probability

    def grow(self, engine, iteration, uncovered_before, accepted) -> int:
        if accepted.size or engine.num_clusters:
            engine.grow_steps(self.growth_budget)
            return self.growth_budget
        return 0


class ShiftActivationSchedule(CenterSchedule):
    """MPX's exponential-shift activation: integer round ``t`` activates every
    still-uncovered node whose start time ``δ_max − δ_u`` has arrived, then
    all active clusters grow exactly one hop."""

    def __init__(self, start_times: np.ndarray, max_round: int) -> None:
        self.start_times = np.asarray(start_times, dtype=np.float64)
        # Activation in integer rounds; within a round, nodes with smaller
        # start time activate "first" (deterministic tie-break by start time).
        activation_round = np.minimum(
            np.floor(self.start_times).astype(np.int64), max_round
        )
        self.round_order = np.argsort(self.start_times, kind="stable")
        self.sorted_rounds = activation_round[self.round_order]
        self._pointer = 0
        self._newly = 0

    def begin(self, engine: GrowthEngine) -> None:
        self._pointer = 0
        self._newly = 0

    def should_run(self, engine: GrowthEngine, iteration: int) -> bool:
        return engine.num_uncovered > 0

    def select_centers(self, engine: GrowthEngine, iteration: int):
        to_activate = []
        n = engine.num_nodes
        while self._pointer < n and self.sorted_rounds[self._pointer] <= iteration:
            to_activate.append(int(self.round_order[self._pointer]))
            self._pointer += 1
        return np.asarray(to_activate, dtype=np.int64), float("nan")

    def grow(self, engine, iteration, uncovered_before, accepted) -> int:
        self._newly = engine.grow_step() if engine.num_clusters else 0
        return 1 if engine.num_clusters else 0

    def after_iteration(self, engine: GrowthEngine, iteration: int) -> bool:
        # Once every node has been activated or absorbed, a fruitless step
        # means the remaining nodes are unreachable from any active cluster
        # (disconnected graph): stop and let the engine promote them to
        # singleton clusters.
        return (
            self._pointer >= engine.num_nodes
            and self._newly == 0
            and engine.num_uncovered > 0
        )


class StaticSchedule(CenterSchedule):
    """All centers activated up front, then grown disjointly to exhaustion.

    This is plain multi-source growth: the single-batch ablation baseline, the
    nearest-center assignment behind :func:`repro.core.kcenter.evaluate_centers`,
    and (with ``promote_singletons=False``) a drop-in multi-source BFS whose
    ``distance`` array keeps ``UNCOVERED`` for unreachable nodes.
    """

    def __init__(self, centers: Sequence[int], *, promote_singletons: bool = True) -> None:
        self._centers = np.asarray(list(centers), dtype=np.int64)
        self.promote_singletons = promote_singletons

    def should_run(self, engine: GrowthEngine, iteration: int) -> bool:
        return iteration == 0

    def select_centers(self, engine: GrowthEngine, iteration: int):
        return self._centers, float("nan")

    def grow(self, engine, iteration, uncovered_before, accepted) -> int:
        return engine.grow_to_exhaustion()


# ---------------------------------------------------------------------------
# Convenience drivers
# ---------------------------------------------------------------------------
def multi_source_growth(
    graph,
    centers: Sequence[int],
    *,
    tie_break: "TieBreakPolicy | str | None" = None,
    promote_singletons: bool = False,
) -> GrowthEngine:
    """Grow disjoint clusters from ``centers`` until no step makes progress.

    With the default arbitrary tie-break this computes exactly the
    (multi-source) BFS distances and owner assignment used by the k-center
    applications; unreachable nodes keep ``assignment == distance ==
    UNCOVERED`` unless ``promote_singletons`` is set.
    """
    engine = GrowthEngine(graph, tie_break=tie_break)
    return engine.run(StaticSchedule(centers, promote_singletons=promote_singletons))


def farthest_point_centers(
    graph,
    k: int,
    first_center: int,
) -> List[int]:
    """Gonzalez's farthest-point traversal expressed as engine restarts.

    Repeatedly adds the node farthest from the current center set; each
    addition drives one single-source :func:`multi_source_growth` run and the
    running distance arrays are merged.  Nodes unreachable from every center
    (other components) take priority so every component gets a center as soon
    as possible.  Returns the selected center list (size ``min(k, n)``).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    centers = [int(first_center)]
    distances = multi_source_growth(graph, centers).distance
    for _ in range(k - 1):
        reachable = distances >= 0
        if not np.any(reachable):
            break
        unreachable = np.flatnonzero(~reachable)
        if unreachable.size:
            next_center = int(unreachable[0])
        else:
            next_center = int(np.argmax(distances))
        centers.append(next_center)
        new_dist = multi_source_growth(graph, [next_center]).distance
        merge_mask = (distances < 0) | ((new_dist >= 0) & (new_dist < distances))
        distances = np.where(merge_mask, new_dist, distances)
    return centers
