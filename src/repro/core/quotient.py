"""Quotient graphs of a clustering (unweighted and weighted variants).

Given a decomposition ``C`` of a graph ``G``, the quotient graph ``G_C`` has
one node per cluster and an edge between two clusters whenever ``G`` contains
an edge whose endpoints lie in the two clusters.  Section 4 of the paper uses
two variants:

* the **unweighted** quotient graph, whose diameter ``∆_C`` lower-bounds the
  true diameter and yields the upper bound
  ``∆' = 2·R_ALG2·(∆_C + 1) + ∆_C``;
* the **weighted** quotient graph, where the edge between clusters ``A`` and
  ``B`` is weighted with the length of the shortest path of ``G`` connecting
  the two cluster centers using only nodes of the two clusters (computed as
  ``min over crossing edges (a, b) of dist(a, center_A) + 1 + dist(b,
  center_B)``), yielding the tighter upper bound ``∆'' = 2·R_ALG2 + ∆'_C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.clustering import Clustering
from repro.graph import kernels
from repro.graph.csr import CSRGraph

__all__ = [
    "QuotientGraph",
    "build_quotient_graph",
    "quotient_apsp",
    "quotient_dijkstra",
    "quotient_diameter",
]


@dataclass(frozen=True)
class QuotientGraph:
    """Quotient graph of a clustering, with optional per-arc weights.

    Attributes
    ----------
    graph:
        Cluster-level :class:`CSRGraph` (one node per cluster).
    weights:
        ``float64`` array aligned with ``graph.indices`` giving the weight of
        every stored arc, or ``None`` for the unweighted variant.
    """

    graph: CSRGraph
    weights: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def arc_weight(self, u: int, v: int) -> float:
        """Weight of arc ``(u, v)`` (1.0 for unweighted quotient graphs)."""
        row = self.graph.indices[self.graph.indptr[u]: self.graph.indptr[u + 1]]
        pos = np.searchsorted(row, v)
        if pos >= row.size or row[pos] != v:
            raise KeyError(f"no quotient edge between clusters {u} and {v}")
        if self.weights is None:
            return 1.0
        return float(self.weights[self.graph.indptr[u] + pos])


def build_quotient_graph(
    graph: CSRGraph, clustering: Clustering, *, weighted: bool = False
) -> QuotientGraph:
    """Construct the (optionally weighted) quotient graph of ``clustering``.

    The weight of the quotient edge ``{A, B}`` is
    ``min over G-edges (a, b) with a ∈ A, b ∈ B of
    dist(a, center_A) + 1 + dist(b, center_B)``
    where the distances are the growth distances recorded by the clustering
    (the exact quantity a distributed implementation has available).
    """
    if graph.num_nodes != clustering.num_nodes:
        raise ValueError("graph and clustering refer to different node sets")
    k = clustering.num_clusters
    edges = graph.edge_array()
    if edges.size == 0:
        return QuotientGraph(graph=CSRGraph.empty(k), weights=np.zeros(0) if weighted else None)
    cu = clustering.assignment[edges[:, 0]]
    cv = clustering.assignment[edges[:, 1]]
    cross = cu != cv
    cu, cv = cu[cross], cv[cross]
    if cu.size == 0:
        return QuotientGraph(graph=CSRGraph.empty(k), weights=np.zeros(0) if weighted else None)
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    pair_keys = lo * np.int64(k) + hi
    if not weighted:
        unique_keys = np.unique(pair_keys)
        q_edges = np.stack([unique_keys // k, unique_keys % k], axis=1)
        return QuotientGraph(graph=CSRGraph.from_edges(q_edges, num_nodes=k), weights=None)

    crossing = edges[cross]
    path_len = (
        clustering.distance[crossing[:, 0]]
        + clustering.distance[crossing[:, 1]]
        + 1
    ).astype(np.float64)
    unique_keys, inverse = np.unique(pair_keys, return_inverse=True)
    min_weight = np.full(unique_keys.size, np.inf)
    np.minimum.at(min_weight, inverse, path_len)
    q_edges = np.stack([unique_keys // k, unique_keys % k], axis=1)
    q_graph = CSRGraph.from_edges(q_edges, num_nodes=k)

    # Align weights with the CSR arc order of the quotient graph: every stored
    # arc (a, b) maps back to the canonical pair key min*k + max.
    src = np.repeat(np.arange(k, dtype=np.int64), np.diff(q_graph.indptr))
    arc_keys = np.minimum(src, q_graph.indices) * np.int64(k) + np.maximum(src, q_graph.indices)
    positions = np.searchsorted(unique_keys, arc_keys)
    weights = min_weight[positions].astype(np.float64)
    return QuotientGraph(graph=q_graph, weights=weights)


def quotient_apsp(quotient: QuotientGraph) -> np.ndarray:
    """All-pairs shortest-path matrix of a (small) quotient graph.

    Built entirely on the shared frontier kernels of
    :mod:`repro.graph.kernels` — the bit-parallel
    :func:`~repro.graph.kernels.msbfs_levels` sweep (64 sources per ``uint64``
    word, chunked by :func:`~repro.graph.kernels.msbfs_batch_size`) for the
    unweighted flavour, one exact bucketed delta-stepping relaxation per
    cluster for the weighted one — so the distance-oracle serving plane needs
    no external shortest-path dependency.  Entry ``(a, b)`` is ``float64``
    (``inf`` when the clusters lie in different components), matching the
    conventions of ``scipy.sparse.csgraph.shortest_path``, against which this
    function is bit-compat-tested.

    The quotient graph is small by construction (its size is chosen to fit
    the local memory of a single reducer), so the full sweep costs
    ``O(k/64 · (k + m_Q))`` OR-word work on ``k`` clusters — linear in the
    original graph for the oracle's ``k = O(sqrt(n))`` regime.
    """
    n = quotient.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    indptr = quotient.graph.indptr
    indices = quotient.graph.indices
    weights = quotient.weights
    matrix = np.empty((n, n), dtype=np.float64)
    if weights is None:
        degrees = quotient.graph.degrees
        batch = kernels.msbfs_batch_size()
        for lo in range(0, n, batch):
            chunk = np.arange(lo, min(lo + batch, n), dtype=np.int64)
            hops = kernels.msbfs_levels(indptr, indices, chunk, degrees=degrees)
            block = hops.astype(np.float64)
            block[hops < 0] = np.inf
            matrix[lo : lo + chunk.size] = block
    else:
        for source in range(n):
            source_array = np.asarray([source], dtype=np.int64)
            row, _ = kernels.delta_stepping(indptr, indices, weights, source_array)
            matrix[source] = row
    return matrix


def quotient_dijkstra(quotient: QuotientGraph, source: int) -> np.ndarray:
    """Single-source shortest paths on a quotient graph (weighted or not).

    Runs the shared :func:`repro.graph.kernels.delta_stepping` relaxation on
    the quotient's CSR arrays (unit weights for the unweighted flavour): the
    quotient graph is small by construction (its size is chosen to fit the
    local memory of a single reducer), so this is exactly the "one round,
    single reducer" computation of Theorem 4.
    """
    n = quotient.num_nodes
    if not (0 <= source < n):
        raise IndexError("source out of range")
    weights = quotient.weights
    if weights is None:
        weights = np.ones(quotient.graph.indices.size, dtype=np.float64)
    dist, _ = kernels.delta_stepping(
        quotient.graph.indptr,
        quotient.graph.indices,
        weights,
        np.asarray([source], dtype=np.int64),
    )
    return dist


def quotient_diameter(quotient: QuotientGraph, *, method: str = "auto") -> float:
    """Exact diameter of a (connected) quotient graph.

    Parameters
    ----------
    method:
        ``"auto"`` runs the kernel-based :func:`quotient_apsp` matrix sweep
        when the graph has more than 256 nodes and the per-source loop below
        otherwise; ``"scipy"`` uses ``scipy.sparse.csgraph`` (kept as an
        optional external cross-check — scipy is not a dependency of any
        default path); ``"dijkstra"`` uses the pure-Python all-pairs Dijkstra
        above (the second cross-check used in the tests).

    Raises
    ------
    ValueError
        If the quotient graph is disconnected (the underlying graph was
        disconnected), since the diameter is infinite.
    """
    n = quotient.num_nodes
    if n == 0:
        raise ValueError("quotient graph is empty")
    if n == 1:
        return 0.0
    if method not in ("auto", "scipy", "dijkstra"):
        raise ValueError(f"unknown method {method!r}")
    if method == "scipy":
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        data = (
            quotient.weights
            if quotient.weights is not None
            else np.ones(quotient.graph.indices.size, dtype=np.float64)
        )
        matrix = csr_matrix(
            (data, quotient.graph.indices, quotient.graph.indptr), shape=(n, n)
        )
        if quotient.is_weighted:
            dist = shortest_path(matrix, method="D", directed=False)
        else:
            dist = shortest_path(matrix, method="D", directed=False, unweighted=True)
        finite = dist[np.isfinite(dist)]
        if finite.size != dist.size:
            raise ValueError("quotient graph is disconnected; diameter is infinite")
        return float(finite.max())
    if method == "auto" and n > 256:
        dist = quotient_apsp(quotient)
        if not np.all(np.isfinite(dist)):
            raise ValueError("quotient graph is disconnected; diameter is infinite")
        return float(dist.max())

    best = 0.0
    if quotient.is_weighted:
        for source in range(n):
            dist = quotient_dijkstra(quotient, source)
            if not np.all(np.isfinite(dist)):
                raise ValueError("quotient graph is disconnected; diameter is infinite")
            best = max(best, float(dist.max()))
    else:
        degrees = quotient.graph.degrees
        batch = kernels.msbfs_batch_size()
        for lo in range(0, n, batch):
            chunk = np.arange(lo, min(lo + batch, n), dtype=np.int64)
            hops = kernels.msbfs_levels(
                quotient.graph.indptr, quotient.graph.indices, chunk, degrees=degrees
            )
            if np.any(hops < 0):
                raise ValueError("quotient graph is disconnected; diameter is infinite")
            best = max(best, float(hops.max()))
    return best
