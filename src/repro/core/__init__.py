"""Core algorithms: CLUSTER, CLUSTER2, k-center, diameter estimation, oracle."""

from repro.core.cluster import cluster, cluster_with_target_clusters
from repro.core.cluster2 import Cluster2Result, cluster2
from repro.core.clustering import Clustering, GrowthStepStats, IterationStats
from repro.core.diameter import DiameterEstimate, estimate_diameter
from repro.core.growth import ClusterGrowth
from repro.core.growth_engine import (
    ArbitraryTieBreak,
    BatchHalvingSchedule,
    CenterSchedule,
    GeometricSchedule,
    GrowthEngine,
    MinWeightTieBreak,
    ShiftActivationSchedule,
    ShiftedStartTieBreak,
    StaticSchedule,
    TieBreakPolicy,
    farthest_point_centers,
    multi_source_growth,
)
from repro.core.kcenter import KCenterResult, evaluate_centers, kcenter, merge_clusters_to_k
from repro.core.mr_algorithms import (
    MRExecutionReport,
    mr_cluster_decomposition,
    mr_estimate_diameter,
    mr_weighted_cluster_decomposition,
)
from repro.core.mr_native import mr_cluster_native
from repro.core.oracle import (
    DistanceOracle,
    build_distance_oracle,
    check_node_batch,
    default_oracle_tau,
)
from repro.core.quotient import (
    QuotientGraph,
    build_quotient_graph,
    quotient_apsp,
    quotient_diameter,
)

__all__ = [
    "cluster",
    "cluster_with_target_clusters",
    "Cluster2Result",
    "cluster2",
    "Clustering",
    "GrowthStepStats",
    "IterationStats",
    "DiameterEstimate",
    "estimate_diameter",
    "ClusterGrowth",
    "GrowthEngine",
    "TieBreakPolicy",
    "ArbitraryTieBreak",
    "MinWeightTieBreak",
    "ShiftedStartTieBreak",
    "CenterSchedule",
    "BatchHalvingSchedule",
    "GeometricSchedule",
    "ShiftActivationSchedule",
    "StaticSchedule",
    "multi_source_growth",
    "farthest_point_centers",
    "KCenterResult",
    "evaluate_centers",
    "kcenter",
    "merge_clusters_to_k",
    "MRExecutionReport",
    "mr_cluster_decomposition",
    "mr_cluster_native",
    "mr_estimate_diameter",
    "mr_weighted_cluster_decomposition",
    "DistanceOracle",
    "build_distance_oracle",
    "check_node_batch",
    "default_oracle_tau",
    "QuotientGraph",
    "build_quotient_graph",
    "quotient_apsp",
    "quotient_diameter",
]
