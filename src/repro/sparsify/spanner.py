"""Cluster-based graph sparsification (spanners).

Theorem 4 of the paper needs, in one of its two regimes, to shrink a quotient
graph that does not fit in a reducer's local memory: it invokes the
sparsification of Baswana & Sen [4], which computes a ``(2k−1)``-spanner with
``O(k n^{1+1/k})`` edges through ``k`` rounds of cluster formation — "a
constant number of cluster growing steps similar in spirit" to CLUSTER's.

We implement the unweighted Baswana–Sen spanner.  For ``k = 2`` it yields a
3-spanner with ``O(n^{3/2})`` edges, which is the setting Theorem 4 uses to
make the quotient graph fit in ``M_L`` while stretching its diameter by only a
constant factor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["baswana_sen_spanner", "spanner_stretch_bound"]


def spanner_stretch_bound(k: int) -> int:
    """Stretch guarantee of the ``k``-round Baswana–Sen spanner (``2k − 1``)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 2 * k - 1


def baswana_sen_spanner(graph: CSRGraph, k: int = 2, *, seed: SeedLike = None) -> CSRGraph:
    """Compute a ``(2k−1)``-spanner of ``graph`` (unweighted Baswana–Sen).

    Phase 1 (k−1 rounds): maintain a clustering, initially all singletons.
    In each round every cluster survives (is *sampled*) with probability
    ``n^{-1/k}``; a node adjacent to a sampled cluster joins one of them and
    adds the connecting edge to the spanner; a node adjacent to no sampled
    cluster adds one edge to every neighbouring (old) cluster and leaves the
    clustering.

    Phase 2: every remaining clustered node adds one edge to each
    neighbouring cluster.

    Returns a subgraph of ``graph`` with the same node set whose shortest-path
    distances are at most ``2k − 1`` times the originals.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_nodes
    if n == 0 or graph.num_edges == 0:
        return CSRGraph.empty(n)
    if k == 1:
        return graph  # the only 1-spanner is the graph itself
    rng = as_rng(seed)
    sample_probability = n ** (-1.0 / k)

    cluster_of = np.arange(n, dtype=np.int64)   # cluster id of each clustered node
    clustered = np.ones(n, dtype=bool)          # nodes still participating
    spanner_edges = []

    edges = graph.edge_array()
    for _phase in range(k - 1):
        active_clusters = np.unique(cluster_of[clustered])
        sampled_mask = rng.random(active_clusters.size) < sample_probability
        sampled_clusters = set(int(c) for c in active_clusters[sampled_mask])

        new_cluster_of = cluster_of.copy()
        new_clustered = clustered.copy()

        # Consider, for every clustered node, its edges to clustered neighbours.
        src, dst = edges[:, 0], edges[:, 1]
        both = np.concatenate([np.stack([src, dst], axis=1), np.stack([dst, src], axis=1)])
        u_arr, v_arr = both[:, 0], both[:, 1]
        valid = clustered[u_arr] & clustered[v_arr]
        u_arr, v_arr = u_arr[valid], v_arr[valid]

        # Group the incident edges of each node u.
        order = np.argsort(u_arr, kind="stable")
        u_sorted, v_sorted = u_arr[order], v_arr[order]
        boundaries = np.searchsorted(u_sorted, np.arange(n + 1))

        for u in np.flatnonzero(clustered):
            if cluster_of[u] in sampled_clusters:
                continue  # nodes of sampled clusters stay as they are
            lo, hi = boundaries[u], boundaries[u + 1]
            neighbours = v_sorted[lo:hi]
            if neighbours.size == 0:
                new_clustered[u] = False
                continue
            neighbour_clusters = cluster_of[neighbours]
            is_sampled = np.asarray(
                [int(c) in sampled_clusters for c in neighbour_clusters], dtype=bool
            )
            if np.any(is_sampled):
                # Join (any) one adjacent sampled cluster through one edge.
                pick = int(np.flatnonzero(is_sampled)[0])
                spanner_edges.append((int(u), int(neighbours[pick])))
                new_cluster_of[u] = int(neighbour_clusters[pick])
            else:
                # Leave the clustering; keep one edge per adjacent cluster.
                _, first_index = np.unique(neighbour_clusters, return_index=True)
                for idx in first_index:
                    spanner_edges.append((int(u), int(neighbours[int(idx)])))
                new_clustered[u] = False
        cluster_of, clustered = new_cluster_of, new_clustered

    # Phase 2: one edge from every still-clustered node to each adjacent cluster.
    src, dst = edges[:, 0], edges[:, 1]
    both = np.concatenate([np.stack([src, dst], axis=1), np.stack([dst, src], axis=1)])
    u_arr, v_arr = both[:, 0], both[:, 1]
    valid = clustered[u_arr] & clustered[v_arr] & (cluster_of[u_arr] != cluster_of[v_arr])
    u_arr, v_arr = u_arr[valid], v_arr[valid]
    if u_arr.size:
        keys = u_arr * np.int64(n) + cluster_of[v_arr]
        _, first_index = np.unique(keys, return_index=True)
        for idx in first_index:
            spanner_edges.append((int(u_arr[int(idx)]), int(v_arr[int(idx)])))
    # Also keep intra-cluster tree edges collected implicitly above: edges that
    # connect a node to the cluster it joined are already in spanner_edges; the
    # initial singleton clusters need no internal edges.

    if not spanner_edges:
        return CSRGraph.empty(n)
    return CSRGraph.from_edges(np.asarray(spanner_edges, dtype=np.int64), num_nodes=n)
