"""Graph sparsification (Baswana–Sen spanners) used by Theorem 4's large-quotient regime."""

from repro.sparsify.spanner import baswana_sen_spanner, spanner_stretch_bound

__all__ = ["baswana_sen_spanner", "spanner_stretch_bound"]
