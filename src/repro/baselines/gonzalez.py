"""Gonzalez farthest-point traversal — sequential 2-approximation for k-center.

Gonzalez (1985) and Hochbaum–Shmoys (1985) give 2-approximations for metric
k-center; the graph variant repeatedly adds the node farthest from the current
center set.  Both the farthest-point selection and the final nearest-center
evaluation drive the shared :class:`~repro.core.growth_engine.GrowthEngine`
(one single-source :func:`~repro.core.growth_engine.multi_source_growth` run
per added center; see
:func:`~repro.core.growth_engine.farthest_point_centers`).  It is the natural
sequential quality baseline for the paper's CLUSTER-based k-center
approximation (Theorem 2): no decomposition-based parallel algorithm can beat
it on solution quality, so comparing against it bounds the practical
approximation loss of the parallel algorithm.

A ``random_centers`` baseline is included as the "no algorithm" control.
"""

from __future__ import annotations

import numpy as np

from repro.core.growth_engine import farthest_point_centers
from repro.core.kcenter import KCenterResult, evaluate_centers
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng

__all__ = ["gonzalez_kcenter", "random_centers_kcenter"]


def gonzalez_kcenter(
    graph: CSRGraph, k: int, *, seed: SeedLike = None, first_center: int | None = None
) -> KCenterResult:
    """Farthest-point traversal k-center (2-approximation on connected graphs).

    Parameters
    ----------
    k:
        Number of centers (1 ≤ k ≤ n).
    first_center:
        Optional explicit first center; defaults to a random node.

    Notes
    -----
    Runs ``k`` multi-source growths, i.e. ``O(k (n + m))`` work and, in a
    round-synchronous distributed setting, ``Θ(k ∆)`` rounds — which is why
    the paper needs a decomposition-based approach for the parallel setting.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= n:
        return evaluate_centers(graph, np.arange(n, dtype=np.int64), algorithm="gonzalez")
    rng = as_rng(seed)
    if first_center is None:
        first_center = int(rng.integers(0, n))
    centers = farthest_point_centers(graph, k, first_center)
    return evaluate_centers(graph, centers, algorithm="gonzalez")


def random_centers_kcenter(graph: CSRGraph, k: int, *, seed: SeedLike = None) -> KCenterResult:
    """Uniformly random centers (control baseline)."""
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = as_rng(seed)
    centers = rng.choice(n, size=min(k, n), replace=False)
    return evaluate_centers(graph, centers, algorithm="random")
