"""The MPX decomposition of Miller, Peng and Xu (SPAA 2013) — baseline.

MPX assigns every node ``u`` an independent random shift ``δ_u ~ Exp(β)`` and
grows a cluster centered at ``u`` starting at time ``δ_max − δ_u`` (unless
``u`` is already covered by then).  Equivalently, every node ``v`` joins the
cluster of the center ``u`` minimizing ``dist(u, v) − δ_u``.  The authors
show the clusters have radius ``O(log n / β)`` w.h.p. while only an
``O(β m)`` expected fraction of the edges crosses clusters.

This is the decomposition strategy the paper compares against in Table 2: it
controls the *number of inter-cluster edges* well, but — unlike CLUSTER — it
does not minimize the maximum radius for a given number of clusters, which is
exactly what the experiments demonstrate.

The implementation follows the level-synchronous integer-time variant used in
practice (and in the paper's own Spark reimplementation): it is the shared
:class:`~repro.core.growth_engine.GrowthEngine` driven by a
:class:`~repro.core.growth_engine.ShiftActivationSchedule` — round ``t``
activates (as singleton clusters) all still-uncovered nodes whose start time
``δ_max − δ_u`` has arrived, then every active cluster grows one hop,
disjointly.  Contested nodes go to the first claimant in the adjacency scan
(the default, matching the historical behaviour of this module); pass
``tie_break="shifted-start"`` to resolve them toward the cluster whose center
started earliest, the continuous-time MPX rule.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.clustering import Clustering
from repro.core.growth_engine import (
    GrowthEngine,
    ShiftActivationSchedule,
    ShiftedStartTieBreak,
)
from repro.graph.csr import CSRGraph
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.model import MRModel
from repro.utils.rng import SeedLike, as_rng

__all__ = ["mpx_decomposition", "mpx_with_target_clusters", "mr_mpx_decomposition"]


def mpx_decomposition(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    tie_break: str = "arbitrary",
) -> Clustering:
    """Run the MPX random-shift decomposition with parameter ``beta``.

    Parameters
    ----------
    graph:
        Unweighted undirected graph.
    beta:
        Rate of the exponential shift distribution.  Larger β ⇒ smaller
        shifts ⇒ more clusters of smaller radius.
    seed:
        Randomness for the shifts.
    tie_break:
        ``"arbitrary"`` (default) resolves contested nodes toward the first
        claimant in the adjacency scan; ``"shifted-start"`` resolves them
        toward the cluster whose center has the earliest shifted start time
        (the continuous-time MPX semantics).

    Returns
    -------
    Clustering
        Disjoint decomposition; cluster centers are the activated nodes.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    rng = as_rng(seed)
    n = graph.num_nodes
    if n == 0:
        return GrowthEngine(graph).to_clustering(algorithm="mpx")

    shifts = rng.exponential(scale=1.0 / beta, size=n)
    delta_max = float(shifts.max())
    start_times = delta_max - shifts  # earliest time each node may start a cluster
    max_round = int(math.floor(delta_max)) + 1

    if tie_break == "arbitrary":
        policy = None
    elif tie_break == "shifted-start":
        policy = ShiftedStartTieBreak(start_times)
    else:
        raise ValueError(f"unknown MPX tie_break {tie_break!r}")
    engine = GrowthEngine(graph, tie_break=policy)
    engine.run(ShiftActivationSchedule(start_times, max_round))
    return engine.to_clustering(algorithm="mpx")


def mr_mpx_decomposition(
    graph: CSRGraph,
    beta: float,
    *,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: BackendSpec = "serial",
    num_shards: Optional[int] = None,
):
    """Run MPX and account for its execution in the MR(M_G, M_L) model.

    MPX is level-synchronous like CLUSTER: every integer round is one
    activation/growing step, i.e. a constant number of MR rounds (Lemma 3
    applies to its sort/prefix-sum formulation as well).  The execution trace
    recorded by :class:`~repro.core.growth_engine.GrowthEngine` is replayed
    against an :class:`~repro.mapreduce.engine.MREngine` configured with the
    chosen execution backend, exactly like the CLUSTER driver in
    :func:`repro.core.mr_algorithms.mr_cluster_decomposition`.

    Returns an :class:`repro.core.mr_algorithms.MRExecutionReport` (with
    ``estimate=None``).
    """
    from repro.core.mr_algorithms import MRExecutionReport, charge_clustering_rounds

    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    clustering = mpx_decomposition(graph, beta, seed=seed)
    charge_clustering_rounds(engine, clustering)
    return MRExecutionReport(
        estimate=None,
        clustering=clustering,
        metrics=engine.metrics,
        simulated_time=cost_model.simulated_time(engine.metrics),
    )


def mpx_with_target_clusters(
    graph: CSRGraph,
    target_clusters: int,
    *,
    seed: SeedLike = None,
    tolerance: float = 0.35,
    max_trials: int = 12,
    require_at_least_target: bool = False,
) -> Clustering:
    """Tune β so that MPX returns approximately ``target_clusters`` clusters.

    The paper's Table 2 protocol gives MPX "a slight advantage" by always
    letting it produce a comparable but *larger* number of clusters than
    CLUSTER; setting ``require_at_least_target=True`` reproduces that bias.
    """
    if target_clusters < 1:
        raise ValueError("target_clusters must be >= 1")
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    # Expected number of activated centers grows with β; start from the
    # heuristic that roughly a fraction β/(β+1)… of nodes become centers and
    # search multiplicatively.
    beta = max(1e-6, target_clusters / max(1, n))
    best: Optional[Clustering] = None
    best_gap = float("inf")
    for _ in range(max_trials):
        result = mpx_decomposition(graph, beta, seed=rng)
        count = result.num_clusters
        gap = abs(count - target_clusters) / target_clusters
        acceptable = (1 - tolerance) * target_clusters <= count <= (1 + tolerance) * target_clusters
        if require_at_least_target:
            acceptable = acceptable and count >= target_clusters
            effective_gap = gap if count >= target_clusters else gap + 1.0
        else:
            effective_gap = gap
        if effective_gap < best_gap:
            best, best_gap = result, effective_gap
        if acceptable:
            return result
        ratio = target_clusters / max(1, count)
        beta = beta * min(8.0, max(0.125, ratio))
    assert best is not None
    return best
