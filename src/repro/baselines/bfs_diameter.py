"""BFS-based diameter estimation — baseline of Table 4 / Figure 1.

A breadth-first search from any node ``s`` yields ``ecc(s) ≤ ∆ ≤ 2·ecc(s)``,
so BFS is a 2-approximation for the diameter.  The practical variant (and the
one we meter here) is the *double sweep*: BFS from a seed node, then BFS again
from the farthest node found; the second eccentricity is a lower bound that is
usually very close to ∆, and twice the first eccentricity is a certified upper
bound.

In a round-synchronous distributed setting each BFS level is one round and the
aggregate communication is ``O(m)`` (every edge is traversed once per BFS), so
BFS needs ``Θ(∆)`` rounds — the quantity that makes it slow on long-diameter
graphs and that our MR accounting captures.

:func:`mr_bfs_diameter` *executes* every level as a structured MR round: the
map phase gathers one ``(target, source)`` claim per arc leaving the frontier
(plus the frontier's own bookkeeping pairs) directly into an
:class:`~repro.mapreduce.backends.ArrayPairs` batch, and the ``first``
segment reducer keeps one claimant per contested node — the same
arbitrary-but-deterministic tie-break as
:func:`repro.graph.kernels.claim_first`.  With ``backend="serial"`` the round
runs through the flattened per-pair tuple path (the bit-compatibility
reference); ``backend="vectorized"`` evaluates it with zero per-key Python
calls.  Estimates and metrics are backend-independent.

The in-memory sweeps of :func:`bfs_diameter` run through the
direction-optimizing :func:`repro.graph.kernels.frontier_expansion` (push or
pull per level, bit-identical either way); the MR path deliberately stays a
push-only per-level plan, since its per-round accounting *is* the metered
quantity — every arc leaving the frontier is charged whatever the local
execution strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph import kernels
from repro.graph.csr import CSRGraph
from repro.graph.traversal import multi_source_bfs
from repro.mapreduce.backends import ArrayPairs
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.metrics import MRMetrics
from repro.mapreduce.model import MRModel
from repro.utils.rng import SeedLike, as_rng

__all__ = ["BFSDiameterResult", "bfs_diameter", "mr_bfs_diameter"]


@dataclass(frozen=True)
class BFSDiameterResult:
    """Diameter estimate produced by the double-sweep BFS baseline.

    Attributes
    ----------
    estimate:
        The reported estimate (the double-sweep eccentricity — a lower bound
        that is typically within a few percent of ∆ on real graphs; this is
        the number a practitioner reports, mirroring Table 4).
    lower_bound / upper_bound:
        Certified bounds: ``estimate`` and ``2 * ecc(first sweep source)``.
    num_bfs:
        Number of BFS traversals performed (2 for a double sweep).
    num_levels:
        Total number of BFS levels across the traversals — the MR round count.
    metrics / simulated_time:
        Present only when produced by :func:`mr_bfs_diameter`.
    """

    estimate: int
    lower_bound: int
    upper_bound: int
    num_bfs: int
    num_levels: int
    metrics: Optional[MRMetrics] = None
    simulated_time: Optional[float] = None


def bfs_diameter(
    graph: CSRGraph, *, seed: SeedLike = None, start: Optional[int] = None
) -> BFSDiameterResult:
    """Double-sweep BFS diameter estimation (in-memory, no MR accounting)."""
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    if start is None:
        start = int(rng.integers(0, n))
    first = multi_source_bfs(graph, [start])
    reachable = np.flatnonzero(first.distances >= 0)
    ecc_first = int(first.distances[reachable].max())
    farthest = int(reachable[np.argmax(first.distances[reachable])])
    second = multi_source_bfs(graph, [farthest])
    reachable2 = np.flatnonzero(second.distances >= 0)
    ecc_second = int(second.distances[reachable2].max())
    return BFSDiameterResult(
        estimate=ecc_second,
        lower_bound=ecc_second,
        upper_bound=2 * ecc_first,
        num_bfs=2,
        num_levels=first.num_levels + second.num_levels,
    )


def _structured_bfs(
    engine: MREngine,
    indptr: np.ndarray,
    indices: np.ndarray,
    num_nodes: int,
    source: int,
) -> Tuple[np.ndarray, int]:
    """One BFS, every level executed as a structured MR round.

    Each round ships one claim ``(target, source)`` per arc leaving the
    frontier plus one bookkeeping pair per frontier node — the communication
    volume of a round-synchronous distributed BFS, including the final
    fruitless expansion attempt.  The ``first`` reducer keeps the first
    claimant per node (claims arrive in adjacency-gather order, matching
    :func:`repro.graph.kernels.claim_first`); nodes already visited discard
    their round output driver-side, exactly like the kernel's unvisited
    filter.  Returns ``(distances, num_productive_levels)``.
    """
    distances = np.full(num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        src, dst, _ = kernels.gather_neighbors(indptr, indices, frontier)
        batch = ArrayPairs(np.concatenate((frontier, dst)), np.concatenate((frontier, src)))
        claimed = engine.run_structured_round(batch, "first", label="bfs-level")
        fresh = claimed.keys[distances[claimed.keys] < 0]
        if fresh.size == 0:
            break
        level += 1
        distances[fresh] = level
        frontier = np.sort(fresh)
    return distances, level


def mr_bfs_diameter(
    graph: CSRGraph,
    *,
    seed: SeedLike = None,
    start: Optional[int] = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: BackendSpec = "vectorized",
    num_shards: Optional[int] = None,
) -> BFSDiameterResult:
    """Double-sweep BFS with every level executed as a structured MR round.

    Each BFS level is one round whose communication volume is the number of
    adjacency entries scanned at that level plus the frontier bookkeeping (so
    the aggregate over a full BFS is ``2m`` arc messages plus ``O(n)``).
    ``backend`` / ``num_shards`` select the engine's execution backend:
    the ``vectorized`` default runs the segment fast path, ``serial`` the
    per-pair tuple path (the bit-compatibility reference); estimates and
    metrics are identical on every backend.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    if start is None:
        start = int(rng.integers(0, n))
    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )

    # Pin the CSR arrays into the backend's shared data plane for the two
    # sweeps (zero-copy views on the process backend, the arrays themselves
    # on in-process backends).
    pinned = engine.pin_shared("bfs-csr", {"indptr": graph.indptr, "indices": graph.indices})
    indptr, indices = pinned["indptr"], pinned["indices"]

    def run_one_bfs(source: int) -> tuple:
        distances, levels = _structured_bfs(engine, indptr, indices, n, source)
        return distances, levels

    try:
        first_dist, first_levels = run_one_bfs(int(start))
        reachable = np.flatnonzero(first_dist >= 0)
        ecc_first = int(first_dist[reachable].max())
        farthest = int(reachable[np.argmax(first_dist[reachable])])
        second_dist, second_levels = run_one_bfs(farthest)
        reachable2 = np.flatnonzero(second_dist >= 0)
        ecc_second = int(second_dist[reachable2].max())
    finally:
        engine.release_pins()

    return BFSDiameterResult(
        estimate=ecc_second,
        lower_bound=ecc_second,
        upper_bound=2 * ecc_first,
        num_bfs=2,
        num_levels=first_levels + second_levels,
        metrics=engine.metrics,
        simulated_time=cost_model.simulated_time(engine.metrics),
    )
