"""Baseline algorithms the paper compares against (MPX, BFS, HADI, Gonzalez)."""

from repro.baselines.bfs_diameter import BFSDiameterResult, bfs_diameter, mr_bfs_diameter
from repro.baselines.gonzalez import gonzalez_kcenter, random_centers_kcenter
from repro.baselines.hadi import HADIResult, fm_estimate, hadi_diameter, make_fm_sketches
from repro.baselines.mpx import mpx_decomposition, mpx_with_target_clusters, mr_mpx_decomposition

__all__ = [
    "BFSDiameterResult",
    "bfs_diameter",
    "mr_bfs_diameter",
    "gonzalez_kcenter",
    "random_centers_kcenter",
    "HADIResult",
    "fm_estimate",
    "hadi_diameter",
    "make_fm_sketches",
    "mpx_decomposition",
    "mpx_with_target_clusters",
    "mr_mpx_decomposition",
]
