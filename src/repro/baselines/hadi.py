"""HADI / ANF — neighborhood-function-based diameter estimation (baseline).

ANF (Palmer, Gibbons, Faloutsos, KDD 2002) approximates the neighborhood
function ``N(t)`` — the number of node pairs at distance at most ``t`` — by
keeping a Flajolet–Martin (FM) sketch per node and, for ``∆`` iterations,
replacing every node's sketch with the bitwise OR of its own and its
neighbours' sketches.  HADI (Kang et al., TKDD 2011) is the MapReduce
implementation of ANF: every iteration is one round that shuffles ``Θ(m)``
sketches, which is why HADI is slow on long-diameter graphs (Θ(∆) rounds
*and* Θ(m) communication per round) — the behaviour the paper's Table 4
demonstrates and that our MR accounting reproduces.

The diameter estimate is the first iteration ``t`` at which the estimated
neighborhood function stops increasing (within a small tolerance), i.e. the
(estimated) effective diameter at 100%; like the original HADI it tends to
slightly *underestimate* the true diameter.

Every sketch-propagation iteration is *executed* as one structured MR round:
the map phase ships each node's sketch to itself plus one sketch along every
arc (a single CSR gather into an
:class:`~repro.mapreduce.backends.ArrayPairs` batch of ``uint64`` register
rows), and the registered ``bitwise_or`` segment reducer merges each node's
incoming sketches with ``np.bitwise_or.reduceat`` — the HADI round, with
zero per-key Python calls on the vectorized backend.  ``backend="serial"``
runs the same round through the flattened per-pair tuple path (the
bit-compatibility reference); estimates and metrics are identical either
way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.mapreduce.backends import ArrayPairs
from repro.mapreduce.cost import DEFAULT_COST_MODEL, CostModel
from repro.mapreduce.engine import BackendSpec, MREngine
from repro.mapreduce.metrics import MRMetrics
from repro.mapreduce.model import MRModel
from repro.utils.rng import SeedLike, as_rng

__all__ = ["HADIResult", "hadi_diameter", "fm_estimate", "make_fm_sketches"]

_FM_CORRECTION = 0.77351  # Flajolet–Martin magic constant


@dataclass(frozen=True)
class HADIResult:
    """Result of the HADI/ANF diameter estimation.

    Attributes
    ----------
    estimate:
        Estimated diameter (iteration at which the neighborhood function
        saturates).
    neighborhood_function:
        ``neighborhood_function[t]`` ≈ number of pairs within distance t
        (index 0 is the number of nodes).
    iterations:
        Number of sketch-propagation iterations executed (MR rounds).
    metrics / simulated_time:
        MR accounting (always present; HADI is inherently an MR algorithm).
    """

    estimate: int
    neighborhood_function: List[float]
    iterations: int
    metrics: MRMetrics
    simulated_time: float


def make_fm_sketches(
    num_items: int, *, num_registers: int = 32, num_bits: int = 64, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Initial FM sketches: one geometric bit per (item, register).

    Returns a ``uint64`` array of shape ``(num_items, num_registers)`` where
    each entry has exactly one bit set; bit ``b`` is chosen with probability
    ``2^{-(b+1)}`` (clamped to the register width).
    """
    if rng is None:
        rng = np.random.default_rng()
    if num_items < 0 or num_registers < 1:
        raise ValueError("num_items must be >= 0 and num_registers >= 1")
    geometric = rng.geometric(0.5, size=(num_items, num_registers)) - 1
    geometric = np.minimum(geometric, num_bits - 1).astype(np.uint64)
    return (np.uint64(1) << geometric).astype(np.uint64)


def fm_estimate(sketches: np.ndarray) -> np.ndarray:
    """Estimate the cardinality represented by each row of OR-ed FM sketches.

    The estimator is ``2^{mean lowest-zero-bit} / 0.77351`` (Flajolet–Martin),
    averaged over the registers of the row.
    """
    if sketches.ndim != 2:
        raise ValueError("sketches must be a 2-d array (items x registers)")
    # The lowest zero bit of x is isolated by ~x & (x + 1); it is a power of
    # two, so its exponent (the number of trailing ones of x) is an exact
    # float64 log2.  All-ones registers wrap to 0 and are clamped to 64.
    lowest_zero = (~sketches) & (sketches + np.uint64(1))
    trailing = np.full(sketches.shape, 64.0)
    nonzero = lowest_zero != 0
    trailing[nonzero] = np.log2(lowest_zero[nonzero].astype(np.float64))
    mean_r = trailing.mean(axis=1)
    return (2.0 ** mean_r) / _FM_CORRECTION


def hadi_diameter(
    graph: CSRGraph,
    *,
    num_registers: int = 32,
    max_iterations: Optional[int] = None,
    tolerance: float = 1e-3,
    seed: SeedLike = None,
    model: Optional[MRModel] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    backend: BackendSpec = "vectorized",
    num_shards: Optional[int] = None,
) -> HADIResult:
    """Estimate the diameter of ``graph`` with HADI/ANF.

    Parameters
    ----------
    num_registers:
        Number of FM registers per node (more registers ⇒ lower variance,
        proportionally more communication).
    max_iterations:
        Safety cap on iterations (defaults to ``n``).
    tolerance:
        Relative increase of the neighborhood function below which the
        process is considered saturated.
    backend / num_shards:
        Execution backend of the engine running the sketch-OR rounds; the
        ``vectorized`` default is the segment fast path, ``serial`` the
        per-pair tuple path.  Estimates and metrics are backend-independent.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    engine = MREngine(
        model=model if model is not None else MRModel(enforce=False),
        backend=backend,
        num_shards=num_shards,
    )
    limit = max_iterations if max_iterations is not None else n

    sketches = make_fm_sketches(n, num_registers=num_registers, rng=rng)
    neighborhood = [float(n)]  # N(0) = n (every node reaches itself)
    estimate = 0
    # Pin the CSR arrays into the backend's shared data plane for the
    # duration of the sketch-propagation loop (zero-copy shared-memory views
    # on the process backend, the arrays themselves on in-process backends).
    pinned = engine.pin_shared("hadi-csr", {"indptr": graph.indptr, "indices": graph.indices})
    indptr, indices = pinned["indptr"], pinned["indices"]
    # The round's key layout is graph structure only — hoisted out of the loop:
    # every node keys its own sketch, then one key per arc (the row owner
    # receives the sketch of each of its neighbours).
    nodes = np.arange(n, dtype=np.int64)
    arc_owners = np.repeat(nodes, np.diff(indptr))
    round_keys = np.concatenate((nodes, arc_owners))

    try:
        for t in range(1, limit + 1):
            # One HADI iteration = one structured MR round shuffling a sketch
            # along every arc (plus each node's own): the bitwise_or segment
            # reducer ORs every node's incoming rows, so zero-degree nodes
            # simply keep their own sketch.
            batch = ArrayPairs(round_keys, np.concatenate((sketches, sketches[indices])))
            merged = engine.run_structured_round(batch, "bitwise_or", label="hadi-iteration")
            updated = np.empty_like(sketches)
            updated[merged.keys] = merged.values
            sketches = updated
            total_pairs = float(fm_estimate(sketches).sum())
            neighborhood.append(total_pairs)
            previous = neighborhood[-2]
            if previous > 0 and (total_pairs - previous) / previous <= tolerance:
                estimate = t - 1
                break
            estimate = t
    finally:
        engine.release_pins()
    return HADIResult(
        estimate=estimate,
        neighborhood_function=neighborhood,
        iterations=len(neighborhood) - 1,
        metrics=engine.metrics,
        simulated_time=cost_model.simulated_time(engine.metrics),
    )
