"""Query workloads for the serving plane: synthesis, log files, and replay.

A workload is a :class:`QueryLog` — three aligned arrays (query kind, ``u``,
``v``; ``v = -1`` for unary kinds) in arrival order.  Logs can be synthesized
with a seeded kind mix (:func:`synthetic_workload`), round-tripped through a
plain text file (:func:`save_query_log` / :func:`load_query_log`, one
``<kind> <u> [<v>]`` line per query), and replayed against a
:class:`~repro.serving.GraphService` in fixed-size batches
(:func:`replay`).  The replay harness times every batch, reports latency
percentiles and queries/sec, and folds every answer array into a SHA-256
checksum — so two replays (e.g. a fresh build versus a snapshot cold-start)
can assert they served *identical* answers by comparing one hash.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "QUERY_KINDS",
    "DEFAULT_MIX",
    "QueryLog",
    "ReplayReport",
    "synthetic_workload",
    "save_query_log",
    "load_query_log",
    "replay",
]

#: Query kinds a service answers, in wire order: code ``i`` ↔ ``QUERY_KINDS[i]``.
QUERY_KINDS = ("distance", "same-cluster", "eccentricity", "center")

#: Kind mix of the default synthetic workload (distance-heavy, as a
#: production distance oracle would see).
DEFAULT_MIX: Dict[str, float] = {
    "distance": 0.70,
    "same-cluster": 0.10,
    "eccentricity": 0.10,
    "center": 0.10,
}

_PAIR_KINDS = frozenset({"distance", "same-cluster"})


@dataclass(frozen=True)
class QueryLog:
    """An ordered batch-friendly query stream.

    ``kinds`` holds codes into :data:`QUERY_KINDS`; ``vs`` is ``-1`` wherever
    the kind is unary (eccentricity / center).
    """

    kinds: np.ndarray
    us: np.ndarray
    vs: np.ndarray

    def __post_init__(self) -> None:
        if not (self.kinds.shape == self.us.shape == self.vs.shape):
            raise ValueError("kinds, us, and vs must be aligned 1-d arrays")

    def __len__(self) -> int:
        return int(self.kinds.size)

    def counts(self) -> Dict[str, int]:
        """Number of queries per kind name."""
        totals = np.bincount(self.kinds, minlength=len(QUERY_KINDS))
        return {name: int(totals[code]) for code, name in enumerate(QUERY_KINDS)}


def synthetic_workload(
    num_nodes: int,
    num_queries: int,
    *,
    mix: Optional[Dict[str, float]] = None,
    seed: SeedLike = None,
) -> QueryLog:
    """A seeded mixed workload of ``num_queries`` over ``num_nodes`` ids.

    ``mix`` maps kind names to non-negative sampling weights (normalized
    internally; defaults to :data:`DEFAULT_MIX`).  Endpoints are uniform over
    the node set, so the workload exercises same-cluster, cross-cluster, and
    ``u == v`` pairs alike.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(QUERY_KINDS)
    if unknown:
        raise ValueError(f"unknown query kinds in mix: {sorted(unknown)}")
    weights = np.asarray([max(0.0, float(mix.get(name, 0.0))) for name in QUERY_KINDS])
    if weights.sum() <= 0:
        raise ValueError("mix must give positive weight to at least one kind")
    rng = as_rng(seed)
    kinds = rng.choice(len(QUERY_KINDS), size=num_queries, p=weights / weights.sum())
    kinds = kinds.astype(np.int8)
    us = rng.integers(0, num_nodes, size=num_queries, dtype=np.int64)
    vs = rng.integers(0, num_nodes, size=num_queries, dtype=np.int64)
    unary = ~np.isin(kinds, [QUERY_KINDS.index(k) for k in _PAIR_KINDS])
    vs[unary] = -1
    return QueryLog(kinds=kinds, us=us, vs=vs)


def save_query_log(log: QueryLog, path: Union[str, os.PathLike]) -> Path:
    """Write a log as plain text: one ``<kind> <u> [<v>]`` line per query."""
    path = Path(path)
    lines = []
    for code, u, v in zip(log.kinds, log.us, log.vs):
        name = QUERY_KINDS[code]
        if name in _PAIR_KINDS:
            lines.append(f"{name} {int(u)} {int(v)}")
        else:
            lines.append(f"{name} {int(u)}")
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def load_query_log(path: Union[str, os.PathLike]) -> QueryLog:
    """Parse a query-log file; raises ``ValueError`` naming the bad line."""
    kinds, us, vs = [], [], []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        name = parts[0]
        if name not in QUERY_KINDS:
            raise ValueError(
                f"line {lineno}: unknown query kind {name!r}; expected one of {QUERY_KINDS}"
            )
        pair = name in _PAIR_KINDS
        expected = 3 if pair else 2
        if len(parts) != expected:
            raise ValueError(
                f"line {lineno}: {name} takes {expected - 1} node id(s), got {stripped!r}"
            )
        try:
            u = int(parts[1])
            v = int(parts[2]) if pair else -1
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer node id in {stripped!r}") from exc
        kinds.append(QUERY_KINDS.index(name))
        us.append(u)
        vs.append(v)
    return QueryLog(
        kinds=np.asarray(kinds, dtype=np.int8),
        us=np.asarray(us, dtype=np.int64),
        vs=np.asarray(vs, dtype=np.int64),
    )


@dataclass
class ReplayReport:
    """Latency / throughput summary of one workload replay."""

    total_queries: int
    num_batches: int
    batch_size: int
    elapsed_s: float
    queries_per_s: float
    latency_ms: Dict[str, float]
    kind_counts: Dict[str, int]
    checksum: str
    batch_seconds: np.ndarray = field(repr=False)

    def summary_lines(self) -> list:
        """Human-readable report for the ``serve`` CLI."""
        latency = " ".join(f"{k}={v:.3f}ms" for k, v in self.latency_ms.items())
        counts = " ".join(f"{k}={v}" for k, v in sorted(self.kind_counts.items()) if v)
        return [
            f"replayed {self.total_queries} queries in {self.num_batches} "
            f"batches of <= {self.batch_size} ({counts})",
            f"throughput: {self.elapsed_s:.3f}s total -> {self.queries_per_s:,.0f} queries/s",
            f"batch latency: {latency}",
            f"answers sha256: {self.checksum}",
        ]


def replay(service, log: QueryLog, *, batch_size: int = 8192) -> ReplayReport:
    """Replay ``log`` against ``service`` in order, ``batch_size`` at a time.

    Within each arrival-order batch the queries are grouped by kind (stable,
    so the per-kind sub-batches preserve log order) and dispatched as one
    vectorized call per kind.  Every answer is scattered back to its log
    position (as float64) and the full log-ordered answer arrays are folded
    into the report's SHA-256 checksum — so the checksum depends only on the
    workload and the served answers, *not* on ``batch_size``, and two replays
    (e.g. a fresh build versus a snapshot cold-start, or different batch
    sizes) can assert they served identical answers by comparing one hash.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    dispatch = {
        "distance": lambda u, v: service.query_distance(u, v),
        "same-cluster": lambda u, v: (service.query_same_cluster(u, v),),
        "eccentricity": lambda u, v: service.query_eccentricity(u),
        "center": lambda u, v: service.query_centers(u),
    }
    total = len(log)
    # Log-ordered answer slots: primary and (for pair-answer kinds) secondary.
    answers_a = np.zeros(total, dtype=np.float64)
    answers_b = np.zeros(total, dtype=np.float64)
    batch_seconds = []
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        kinds = log.kinds[start:stop]
        us = log.us[start:stop]
        vs = log.vs[start:stop]
        tick = time.perf_counter()
        for code, name in enumerate(QUERY_KINDS):
            mask = kinds == code
            if not np.any(mask):
                continue
            answers = dispatch[name](us[mask], vs[mask])
            slots = start + np.flatnonzero(mask)
            answers_a[slots] = answers[0]
            if len(answers) > 1:
                answers_b[slots] = answers[1]
        batch_seconds.append(time.perf_counter() - tick)
    digest = hashlib.sha256()
    digest.update(answers_a.tobytes())
    digest.update(answers_b.tobytes())
    seconds = np.asarray(batch_seconds, dtype=np.float64)
    elapsed = float(seconds.sum())
    if seconds.size:
        millis = seconds * 1e3
        latency = {
            "p50": float(np.percentile(millis, 50)),
            "p90": float(np.percentile(millis, 90)),
            "p99": float(np.percentile(millis, 99)),
            "max": float(millis.max()),
        }
    else:
        latency = {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    return ReplayReport(
        total_queries=total,
        num_batches=int(seconds.size),
        batch_size=int(batch_size),
        elapsed_s=elapsed,
        queries_per_s=(total / elapsed) if elapsed > 0 else float("inf"),
        latency_ms=latency,
        kind_counts=log.counts(),
        checksum=digest.hexdigest(),
        batch_seconds=seconds,
    )
