"""Precompute-once, batched distance-oracle serving plane (ROADMAP item 1).

The long-lived service pattern: :class:`GraphService` loads (or decomposes) a
graph **once** — CLUSTER2 / weighted clustering, quotient APSP matrices, and
the per-node assignment / center-distance arrays — and then answers *batched*
distance, same-cluster, eccentricity, and k-center queries as pure vectorized
lookups, thousands of queries per call with zero per-query Python.

The precomputed state has a versioned, content-hashed snapshot format
(:mod:`repro.serving.snapshot`) persisted through the
:class:`~repro.experiments.store.ArtifactStore` npz layer, so a service can
cold-start from disk without re-running the decomposition;
:mod:`repro.serving.workload` provides synthetic mixed workloads, a
query-log file format, and a latency-percentile replay harness backing the
``python -m repro.experiments serve`` CLI and the ``bench_oracle.py`` gates.
"""

from repro.serving.service import SERVICE_METHODS, GraphService
from repro.serving.snapshot import (
    SNAPSHOT_SCHEMA,
    load_snapshot,
    save_snapshot,
    snapshot_key,
    snapshot_path,
)
from repro.serving.workload import (
    DEFAULT_MIX,
    QUERY_KINDS,
    QueryLog,
    ReplayReport,
    load_query_log,
    replay,
    save_query_log,
    synthetic_workload,
)

__all__ = [
    "GraphService",
    "SERVICE_METHODS",
    "SNAPSHOT_SCHEMA",
    "snapshot_key",
    "snapshot_path",
    "save_snapshot",
    "load_snapshot",
    "QUERY_KINDS",
    "DEFAULT_MIX",
    "QueryLog",
    "ReplayReport",
    "synthetic_workload",
    "save_query_log",
    "load_query_log",
    "replay",
]
