"""Versioned, content-hashed snapshots of the precomputed serving state.

A snapshot is one compressed ``.npz`` file holding everything a
:class:`~repro.serving.GraphService` needs to serve queries — the CSR graph
arrays, the decomposition (assignment / centers / center distances), and the
two quotient APSP matrices — plus a JSON ``meta`` record (schema version,
build parameters, content key).  Loading a snapshot therefore cold-starts a
service **without re-running the decomposition or the APSP**.

Snapshots live in the ``snapshots/`` directory of an
:class:`~repro.experiments.store.ArtifactStore` (the same npz layer the
dataset cache uses: one file per content key, written via a per-process temp
file + rename so concurrent writers race benignly).  The content key is a
SHA-256 over the graph arrays and the build parameters ``(tau, seed,
method)``, so any change to either forces a rebuild and stale snapshots are
never served.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro import faults
from repro.experiments.store import ArtifactStore
from repro.graph.csr import CSRGraph

__all__ = [
    "SNAPSHOT_SCHEMA",
    "snapshot_key",
    "snapshot_path",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_SCHEMA = 1

StoreLike = Union[ArtifactStore, str, os.PathLike]


def _canonical_seed(seed) -> str:
    """Seed token entering the content hash (must be stable across runs)."""
    if seed is None or isinstance(seed, (int, np.integer)):
        return str(seed)
    raise TypeError(
        "snapshotting requires an int or None seed so the content key is "
        f"stable across processes, got {type(seed).__name__}"
    )


def snapshot_key(graph: CSRGraph, *, tau: int, seed, method: str) -> str:
    """Content hash identifying one precomputed serving state.

    Covers the schema version, the build parameters, and the raw CSR arrays
    (including weights), so the key changes exactly when the served answers
    could.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(
        f"oracle-snapshot/v{SNAPSHOT_SCHEMA}/{method}/tau={int(tau)}/"
        f"seed={_canonical_seed(seed)}/n={graph.num_nodes}/m={graph.num_edges}/"
        f"weighted={graph.is_weighted}".encode()
    )
    digest.update(np.ascontiguousarray(graph.indptr).tobytes())
    digest.update(np.ascontiguousarray(graph.indices).tobytes())
    if graph.weights is not None:
        digest.update(np.ascontiguousarray(graph.weights).tobytes())
    return digest.hexdigest()[:20]


def _snapshots_dir(store: StoreLike) -> Path:
    if isinstance(store, ArtifactStore):
        return store.snapshots_dir
    return Path(store)


def snapshot_path(store: StoreLike, key: str) -> Path:
    """Where the snapshot for ``key`` lives under ``store``."""
    return _snapshots_dir(store) / f"{key}.npz"


def save_snapshot(service, store: StoreLike) -> Path:
    """Persist ``service``'s precomputed state; returns the written path.

    Written atomically (per-process temp file + rename, the
    :class:`~repro.experiments.store.DatasetCache` pattern), so concurrent
    builders of the same key overwrite each other with identical bytes-level
    content at worst.
    """
    clustering = service.oracle.clustering
    meta = {
        "schema": SNAPSHOT_SCHEMA,
        "key": service.snapshot_key,
        "method": service.method,
        "tau": int(service.tau),
        "seed": None if service.seed is None else int(service.seed),
        "weighted": bool(service.is_weighted),
        "algorithm": getattr(clustering, "algorithm", "unknown"),
        "same_cluster_lower": float(service.oracle.same_cluster_lower),
    }
    arrays = {
        "indptr": service.graph.indptr,
        "indices": service.graph.indices,
        "assignment": clustering.assignment,
        "centers": clustering.centers,
        "hop_distance": np.asarray(clustering.distance, dtype=np.int64),
        "upper_matrix": service.oracle.upper_matrix,
        "lower_matrix": service.oracle.lower_matrix,
        "meta": np.asarray(json.dumps(meta)),
    }
    if service.graph.weights is not None:
        arrays["graph_weights"] = service.graph.weights
    if service.is_weighted:
        arrays["weighted_distance"] = clustering.weighted_distance
    path = snapshot_path(store, meta["key"])
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)
    faults.corrupt_file("serving.snapshot", path)
    return path


def load_snapshot(path: Union[str, os.PathLike]):
    """Reconstruct a ready-to-serve :class:`~repro.serving.GraphService`.

    Pure array loads — no decomposition, no shortest paths.  The rebuilt
    clustering carries the serving state only (the growth execution trace is
    not persisted; MR accounting needs a fresh decomposition run).

    Raises ``ValueError`` for missing files, schema mismatches, or corrupt
    payloads.
    """
    from repro.core.oracle import DistanceOracle
    from repro.serving.service import GraphService

    path = Path(path)
    try:
        with np.load(path) as data:
            files = set(data.files)
            required = {
                "indptr", "indices", "assignment", "centers",
                "hop_distance", "upper_matrix", "lower_matrix", "meta",
            }
            missing = required - files
            if missing:
                raise ValueError(f"snapshot {path} is missing arrays: {sorted(missing)}")
            meta = json.loads(str(data["meta"]))
            arrays = {name: data[name] for name in files - {"meta"}}
    except ValueError:
        raise
    except Exception as exc:
        # A torn or bit-flipped .npz surfaces as anything from OSError to
        # BadZipFile to JSONDecodeError; normalize them all to ValueError so
        # callers have one "snapshot is unusable" signal to degrade on.
        raise ValueError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"snapshot {path} has schema {meta.get('schema')!r}, "
            f"this build reads schema {SNAPSHOT_SCHEMA}"
        )

    if "graph_weights" in arrays:
        from repro.weighted.wgraph import WeightedCSRGraph

        graph = WeightedCSRGraph(
            indptr=arrays["indptr"],
            indices=arrays["indices"],
            weights=arrays["graph_weights"],
        )
    else:
        graph = CSRGraph(indptr=arrays["indptr"], indices=arrays["indices"])

    if meta.get("weighted"):
        from repro.weighted.decomposition import WeightedClustering

        clustering = WeightedClustering(
            num_nodes=graph.num_nodes,
            assignment=arrays["assignment"],
            centers=arrays["centers"],
            hop_distance=arrays["hop_distance"],
            weighted_distance=arrays["weighted_distance"],
            algorithm=meta.get("algorithm", "weighted-cluster"),
        )
    else:
        from repro.core.clustering import Clustering

        clustering = Clustering(
            num_nodes=graph.num_nodes,
            assignment=arrays["assignment"],
            centers=arrays["centers"],
            distance=arrays["hop_distance"],
            algorithm=meta.get("algorithm", "cluster2"),
        )

    oracle = DistanceOracle(
        clustering=clustering,
        upper_matrix=arrays["upper_matrix"],
        lower_matrix=arrays["lower_matrix"],
        same_cluster_lower=float(meta.get("same_cluster_lower", 1.0)),
    )
    return GraphService(
        graph,
        oracle,
        method=meta.get("method", "cluster2"),
        tau=int(meta["tau"]),
        seed=meta.get("seed"),
        snapshot_key=meta.get("key"),
    )
