"""The :class:`GraphService`: one decomposition, millions of batched queries.

Serving state is a handful of aligned arrays, all derived from a single
decomposition run (shared with :class:`~repro.core.pipeline.DecompositionPipeline`
— the service never re-clusters a graph an existing pipeline already
decomposed):

* per-node: cluster ``assignment``, ``center_distance`` (float64), owned by
  the underlying :class:`~repro.core.oracle.DistanceOracle`;
* per-cluster: ``centers``, growth ``radii``, and the precomputed
  eccentricity-bound vectors folded out of the quotient APSP matrices (the
  unweighted APSP runs on the bit-parallel
  :func:`~repro.graph.kernels.msbfs_levels` sweep — 64 cluster sources per
  ``uint64`` word — so oracle builds no longer loop one BFS per cluster).

Every query method takes whole id arrays and answers with aligned result
arrays — the hot path is index gathers and ufuncs only.  Queries served:

===================  =====================================================
method               answer per queried entry
===================  =====================================================
query_distance       ``(lower, upper)`` bounds on ``dist(u, v)``
query_same_cluster   whether ``u`` and ``v`` share a cluster
query_eccentricity   ``(lower, upper)`` bounds on the eccentricity of ``u``
query_centers        ``(center node, center-distance upper bound)`` of ``u``
===================  =====================================================

The eccentricity bounds come from the decomposition alone: for a node ``u``
in cluster ``A`` with center distance ``d_u``,

    ``ecc(u) ≥ max_B hop_Q(A, B) · w_min``   (every path to a node of ``B``
    crosses at least ``hop_Q(A, B)`` inter-cluster edges), and

    ``ecc(u) ≤ d_u + max_B ( upper_Q(A, B) + radius(B) )``   (route through
    the two centers, then anywhere inside ``B``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.oracle import (
    DistanceOracle,
    build_distance_oracle,
    check_node_batch,
    default_oracle_tau,
)
from repro.core.pipeline import DecompositionPipeline, PipelineConfig
from repro.graph import kernels
from repro.graph.csr import CSRGraph

__all__ = ["GraphService", "SERVICE_METHODS"]

#: Decomposition methods the serving plane supports (a subset of
#: :data:`repro.core.pipeline.PIPELINE_METHODS`; ``"auto"`` resolves to
#: ``"weighted"`` for weighted graphs and ``"cluster2"`` otherwise).
SERVICE_METHODS = ("cluster", "cluster2", "weighted")


def resolve_method(graph: CSRGraph, method: str) -> str:
    """Resolve ``"auto"`` and validate an explicit service method."""
    if method == "auto":
        return "weighted" if graph.is_weighted else "cluster2"
    if method not in SERVICE_METHODS:
        raise ValueError(
            f"unknown service method {method!r}; choose from {SERVICE_METHODS} or 'auto'"
        )
    return method


class GraphService:
    """Batched distance-oracle serving plane over one precomputed decomposition.

    Construct through :meth:`build` (run the decomposition once),
    :func:`repro.serving.load_snapshot` (cold-start from a persisted
    snapshot), or :meth:`load_or_build` (snapshot hit or build-and-save).
    """

    def __init__(
        self,
        graph: CSRGraph,
        oracle: DistanceOracle,
        *,
        method: str,
        tau: int,
        seed=None,
        snapshot_key: Optional[str] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> None:
        if graph.num_nodes != oracle.num_nodes:
            raise ValueError("graph and oracle refer to different node sets")
        self.graph = graph
        self.oracle = oracle
        self.method = method
        self.tau = int(tau)
        self.seed = seed
        self.timings: Dict[str, float] = dict(timings or {})
        #: kernel counter totals of the build (``REPRO_KERNEL_STATS=1`` builds
        #: only; None otherwise and for snapshot-loaded services)
        self.kernel_stats: Optional[Dict[str, int]] = None
        self._snapshot_key = snapshot_key
        clustering = oracle.clustering
        self.assignment = oracle.assignment
        self.center_distance = oracle.center_distance
        self.centers = np.ascontiguousarray(clustering.centers, dtype=np.int64)
        radii = np.zeros(clustering.num_clusters, dtype=np.float64)
        np.maximum.at(radii, self.assignment, self.center_distance)
        self.cluster_radii = radii
        self._ecc_lower_by_cluster = oracle.lower_matrix.max(axis=1)
        self._ecc_upper_by_cluster = (oracle.upper_matrix + radii[None, :]).max(axis=1)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        *,
        tau: Optional[int] = None,
        seed=None,
        method: str = "auto",
        clustering=None,
    ) -> "GraphService":
        """Run the full precompute once and return a ready-to-serve instance.

        The decomposition stage runs through a
        :class:`~repro.core.pipeline.DecompositionPipeline` (so service and
        pipeline share one implementation and one result); a precomputed
        ``clustering`` — e.g. from an existing pipeline — skips it entirely.
        ``seed`` must be an ``int`` or ``None`` if the service is to be
        snapshotted (the snapshot content key covers graph + tau + seed).
        """
        if graph.num_nodes == 0:
            raise ValueError("graph must be non-empty")
        method = resolve_method(graph, method)
        if tau is None:
            tau = default_oracle_tau(graph.num_nodes)
        timings: Dict[str, float] = {}
        stats_before = (
            kernels.kernel_stats_snapshot() if kernels.kernel_stats_enabled() else None
        )
        if clustering is None:
            pipeline = DecompositionPipeline(
                graph, PipelineConfig(method=method, tau=tau, seed=seed)
            )
            clustering = pipeline.decompose()
            graph = pipeline.graph  # method="weighted" lifts to unit weights
            timings.update(pipeline.timings)
        start = time.perf_counter()
        oracle = build_distance_oracle(graph, clustering=clustering)
        timings["oracle"] = time.perf_counter() - start
        service = cls(graph, oracle, method=method, tau=tau, seed=seed, timings=timings)
        if stats_before is not None:
            after = kernels.kernel_stats_snapshot()
            service.kernel_stats = {
                counter: after[counter] - stats_before[counter] for counter in after
            }
        return service

    @classmethod
    def load_or_build(
        cls,
        store,
        graph: CSRGraph,
        *,
        tau: Optional[int] = None,
        seed=None,
        method: str = "auto",
    ) -> Tuple["GraphService", bool]:
        """Serve from a stored snapshot when one matches, else build and save.

        ``store`` is an :class:`~repro.experiments.store.ArtifactStore` or a
        plain snapshot directory.  Returns ``(service, loaded)`` where
        ``loaded`` tells whether the precomputed state came off disk (the
        cold-start path: no decomposition, no APSP).  Any change to the graph
        arrays, ``tau``, ``seed``, or ``method`` changes the content key and
        forces a rebuild.

        A snapshot that exists but fails to load (torn write, flipped bit,
        stale schema) degrades gracefully: a ``RuntimeWarning`` is emitted,
        the corrupt file is removed, and the service is rebuilt and re-saved
        — cold starts never abort on damaged cache state.
        """
        import warnings

        from repro.serving import snapshot as snap

        method = resolve_method(graph, method)
        if tau is None:
            tau = default_oracle_tau(graph.num_nodes)
        key = snap.snapshot_key(graph, tau=tau, seed=seed, method=method)
        path = snap.snapshot_path(store, key)
        if path.exists():
            try:
                service = snap.load_snapshot(path)
                return service, True
            except ValueError as exc:
                warnings.warn(
                    f"oracle snapshot {path} is corrupt ({exc}); rebuilding",
                    RuntimeWarning,
                    stacklevel=2,
                )
                path.unlink(missing_ok=True)
        service = cls.build(graph, tau=tau, seed=seed, method=method)
        snap.save_snapshot(service, store)
        return service, False

    def save_snapshot(self, store):
        """Persist the precomputed state; see :func:`repro.serving.save_snapshot`."""
        from repro.serving.snapshot import save_snapshot

        return save_snapshot(self, store)

    # ------------------------------------------------------------------ #
    # Batched queries (the serving hot path: gathers and ufuncs only)
    # ------------------------------------------------------------------ #
    def query_distance(self, us, vs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched ``(lower, upper)`` distance bounds; see
        :meth:`repro.core.oracle.DistanceOracle.query_batch`."""
        return self.oracle.query_batch(us, vs)

    def query_same_cluster(self, us, vs) -> np.ndarray:
        """Whether each aligned pair lies in the same cluster (bool array)."""
        n = self.num_nodes
        us = check_node_batch(us, n, "us")
        vs = check_node_batch(vs, n, "vs")
        if us.shape != vs.shape:
            raise ValueError(
                f"us and vs must have the same length, got {us.size} and {vs.size}"
            )
        return self.assignment[us] == self.assignment[vs]

    def query_eccentricity(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node ``(lower, upper)`` eccentricity bounds (float64 arrays)."""
        idx = check_node_batch(nodes, self.num_nodes, "nodes")
        cluster_ids = self.assignment[idx]
        lower = self._ecc_lower_by_cluster[cluster_ids].copy()
        upper = self.center_distance[idx] + self._ecc_upper_by_cluster[cluster_ids]
        return lower, upper

    def query_centers(self, nodes) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node k-center assignment: ``(center node id, distance bound)``.

        The distance is the growth distance to the own cluster center — an
        upper bound on (and within the growth forest, a realizable path
        length to) the true center distance, i.e. exactly the k-center
        assignment radius the decomposition guarantees.
        """
        idx = check_node_batch(nodes, self.num_nodes, "nodes")
        cluster_ids = self.assignment[idx]
        return self.centers[cluster_ids], self.center_distance[idx].copy()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_clusters(self) -> int:
        return self.oracle.num_clusters

    @property
    def is_weighted(self) -> bool:
        return self.oracle.is_weighted

    @property
    def space_entries(self) -> int:
        return self.oracle.space_entries

    @property
    def snapshot_key(self) -> str:
        """Content hash of the precomputed state (graph + tau + seed + method)."""
        if self._snapshot_key is None:
            from repro.serving.snapshot import snapshot_key

            self._snapshot_key = snapshot_key(
                self.graph, tau=self.tau, seed=self.seed, method=self.method
            )
        return self._snapshot_key

    def stats(self) -> dict:
        """Compact dict for logs and the ``serve`` CLI banner.

        Builds run under ``REPRO_KERNEL_STATS=1`` include a ``kernel_stats``
        entry with the build's frontier-kernel counter totals.
        """
        stats = {
            "num_nodes": self.num_nodes,
            "num_edges": self.graph.num_edges,
            "num_clusters": self.num_clusters,
            "method": self.method,
            "tau": self.tau,
            "weighted": self.is_weighted,
            "space_entries": self.space_entries,
            "snapshot_key": self.snapshot_key,
        }
        if self.kernel_stats is not None:
            stats["kernel_stats"] = dict(self.kernel_stats)
        return stats

    def __repr__(self) -> str:
        return (
            f"GraphService(n={self.num_nodes}, m={self.graph.num_edges}, "
            f"k={self.num_clusters}, method={self.method!r}, tau={self.tau})"
        )
