"""Weighted CLUSTER: the hop-bounded weighted decomposition (paper §7 outlook).

The paper's conclusions describe a "preliminary decomposition strategy that,
together with the number of clusters and their weighted radius, also controls
their hop radius, which governs the parallel depth of the computation".  This
module implements that strategy as a natural weighted generalization of
Algorithm 1, reusing the shared :class:`~repro.core.growth_engine.GrowthEngine`
end to end:

* the outer loop is *identical* to CLUSTER — the engine runs the very same
  :class:`~repro.core.growth_engine.BatchHalvingSchedule` (select a batch of
  new centers with probability ``4 τ log n / |uncovered|``, grow until at
  least half of the uncovered nodes are covered, repeat while more than
  ``8 τ log n`` nodes are uncovered);
* only the tie-break policy differs: a growing step extends every active
  cluster by **one hop** (one parallel round), and when several clusters reach
  the same uncovered node in the same round the
  :class:`~repro.core.growth_engine.MinWeightTieBreak` policy awards it to the
  cluster offering the **smallest accumulated weighted distance**;
* the decomposition therefore records, per node, both the hop distance (number
  of rounds after activation of its cluster — the parallel-depth quantity)
  and the weighted distance along the growth path (the weighted-radius
  quantity), plus the same per-step/per-iteration execution trace as the
  unweighted algorithms, so the MR-round accounting of
  :mod:`repro.core.mr_algorithms` covers weighted runs too.

The weighted distance along the growth path is a genuine path length, hence an
upper bound on the true weighted distance to the center; the hop distance is
exactly the number of parallel rounds the cluster needed to reach the node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.cluster import tune_tau
from repro.core.clustering import GrowthStepStats, IterationStats
from repro.core.growth_engine import (
    UNCOVERED,
    BatchHalvingSchedule,
    GrowthEngine,
    MinWeightTieBreak,
)
from repro.utils.rng import SeedLike, as_rng
from repro.weighted.traversal import multi_source_dijkstra
from repro.weighted.wgraph import WeightedCSRGraph

__all__ = [
    "WeightedClustering",
    "weighted_cluster",
    "weighted_cluster_with_target_clusters",
    "WeightedGrowth",
    "UNCOVERED",
]


@dataclass
class WeightedClustering:
    """A disjoint decomposition of a weighted graph.

    Attributes
    ----------
    num_nodes:
        Number of nodes.
    assignment:
        Cluster id of every node.
    centers:
        Center node of every cluster.
    hop_distance:
        Number of growing rounds after which each node was covered
        (0 for centers) — the hop radius is ``hop_distance.max()``.
    weighted_distance:
        Accumulated edge weight along the growth path from the center
        (0.0 for centers) — the weighted radius is ``weighted_distance.max()``.
    growth_rounds:
        Total number of parallel growing rounds executed (parallel depth).
    iterations / step_log:
        The same execution trace as :class:`~repro.core.clustering.Clustering`
        (one :class:`IterationStats` per outer iteration, one
        :class:`GrowthStepStats` per growing round), consumed by the MR-round
        accounting in :mod:`repro.core.mr_algorithms`.
    """

    num_nodes: int
    assignment: np.ndarray
    centers: np.ndarray
    hop_distance: np.ndarray
    weighted_distance: np.ndarray
    growth_rounds: int = 0
    iterations: List[IterationStats] = field(default_factory=list)
    step_log: List[GrowthStepStats] = field(default_factory=list)
    algorithm: str = "weighted-cluster"

    @property
    def num_clusters(self) -> int:
        return int(self.centers.size)

    @property
    def growth_steps(self) -> int:
        """Alias of :attr:`growth_rounds` matching the unweighted
        :class:`~repro.core.clustering.Clustering` interface."""
        return self.growth_rounds

    @property
    def hop_radius(self) -> int:
        """Maximum hop distance (the parallel-depth quantity)."""
        return int(self.hop_distance.max()) if self.hop_distance.size else 0

    @property
    def distance(self) -> np.ndarray:
        """Alias of :attr:`hop_distance` matching the unweighted
        :class:`~repro.core.clustering.Clustering` interface, so quotient
        building and MR accounting consume weighted decompositions unchanged."""
        return self.hop_distance

    @property
    def max_radius(self) -> int:
        """Alias of :attr:`hop_radius` (the :class:`Clustering` name)."""
        return self.hop_radius

    @property
    def weighted_radius(self) -> float:
        """Maximum accumulated weighted distance to a center."""
        return float(self.weighted_distance.max()) if self.weighted_distance.size else 0.0

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_clusters).astype(np.int64)

    def members(self, cluster_id: int) -> np.ndarray:
        if not (0 <= cluster_id < self.num_clusters):
            raise IndexError(f"cluster {cluster_id} out of range")
        return np.flatnonzero(self.assignment == cluster_id)

    def validate(self, graph: Optional[WeightedCSRGraph] = None) -> None:
        """Check partition / consistency invariants (AssertionError on failure)."""
        assert self.assignment.shape == (self.num_nodes,)
        if self.num_nodes == 0:
            return
        assert self.assignment.min() >= 0
        assert self.assignment.max() < self.num_clusters
        assert np.unique(self.assignment).size == self.num_clusters
        assert np.all(self.assignment[self.centers] == np.arange(self.num_clusters))
        assert np.all(self.hop_distance[self.centers] == 0)
        assert np.all(self.weighted_distance[self.centers] == 0.0)
        assert np.all(self.hop_distance >= 0)
        assert np.all(self.weighted_distance >= 0.0)
        if graph is not None:
            assert graph.num_nodes == self.num_nodes
            # The growth-path weighted distance upper-bounds the true distance
            # from the node's own cluster center.
            exact = multi_source_dijkstra(graph, list(self.centers))
            assert np.all(self.weighted_distance + 1e-9 >= exact.distances), (
                "growth-path distance must upper-bound the nearest-center distance"
            )

    def summary(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "num_clusters": self.num_clusters,
            "hop_radius": self.hop_radius,
            "weighted_radius": round(self.weighted_radius, 3),
            "growth_rounds": self.growth_rounds,
        }


class WeightedGrowth(GrowthEngine):
    """Hop-synchronous weighted cluster growing (compatibility shim).

    The weighted growth loop is the shared :class:`GrowthEngine` with the
    :class:`MinWeightTieBreak` policy; this subclass only preserves the
    historical attribute names (``hop_distance`` / ``num_rounds`` /
    ``grow_round``) and the :class:`WeightedClustering` freeze.
    """

    def __init__(self, graph: WeightedCSRGraph) -> None:
        super().__init__(graph, tie_break=MinWeightTieBreak())

    @property
    def hop_distance(self) -> np.ndarray:
        return self.distance

    @property
    def num_rounds(self) -> int:
        return self.num_steps

    def grow_round(self) -> int:
        """One parallel hop-round; uncovered nodes go to the lightest claimant."""
        return self.grow_step()

    def to_clustering(self, algorithm: str = "weighted-cluster") -> WeightedClustering:
        return self.to_weighted_clustering(algorithm)


def weighted_cluster(
    graph: WeightedCSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    max_iterations: Optional[int] = None,
) -> WeightedClustering:
    """Hop-bounded weighted decomposition (weighted CLUSTER(τ)).

    Identical batch-halving structure to Algorithm 1; ties inside a growing
    round are resolved toward the cluster with the smallest accumulated
    weighted distance, so the weighted radius stays controlled while the hop
    radius (= number of growing rounds) controls the parallel depth.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    schedule = BatchHalvingSchedule(tau, as_rng(seed), max_iterations=max_iterations)
    engine = GrowthEngine(graph, tie_break=MinWeightTieBreak())
    return engine.run(schedule).to_weighted_clustering("weighted-cluster")


def weighted_cluster_with_target_clusters(
    graph: WeightedCSRGraph,
    target_clusters: int,
    *,
    seed: SeedLike = None,
    tolerance: float = 0.35,
    max_trials: int = 12,
) -> WeightedClustering:
    """Run the weighted decomposition with τ tuned toward a cluster count.

    The weighted CLUSTER shares Algorithm 1's batch-halving schedule, so the
    ``#clusters = O(τ log² n)`` inversion and the multiplicative search of
    :func:`repro.core.cluster.cluster_with_target_clusters` apply unchanged —
    this is the §6 tuning protocol on the weighted stack, used by the
    pipeline's ``method="weighted"`` with ``target_clusters``.
    """
    rng = as_rng(seed)
    return tune_tau(
        lambda tau: weighted_cluster(graph, tau, seed=rng),
        graph.num_nodes,
        target_clusters,
        tolerance=tolerance,
        max_trials=max_trials,
    )
