"""Weighted CLUSTER: the hop-bounded weighted decomposition (paper §7 outlook).

The paper's conclusions describe a "preliminary decomposition strategy that,
together with the number of clusters and their weighted radius, also controls
their hop radius, which governs the parallel depth of the computation".  This
module implements that strategy as a natural weighted generalization of
Algorithm 1:

* the outer loop is identical to CLUSTER (select a batch of new centers with
  probability ``4 τ log n / |uncovered|``, grow until at least half of the
  uncovered nodes are covered, repeat while more than ``8 τ log n`` nodes are
  uncovered);
* a growing step extends every active cluster by **one hop** (one parallel
  round), and when several clusters reach the same uncovered node in the same
  round the node is claimed by the cluster offering the **smallest accumulated
  weighted distance**;
* the decomposition therefore records, per node, both the hop distance (number
  of rounds after activation of its cluster — the parallel-depth quantity)
  and the weighted distance along the growth path (the weighted-radius
  quantity).

The weighted distance along the growth path is a genuine path length, hence an
upper bound on the true weighted distance to the center; the hop distance is
exactly the number of parallel rounds the cluster needed to reach the node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cluster import selection_probability, uncovered_threshold
from repro.utils.rng import SeedLike, as_rng, random_subset_mask
from repro.weighted.traversal import multi_source_dijkstra
from repro.weighted.wgraph import WeightedCSRGraph

__all__ = ["WeightedClustering", "weighted_cluster", "WeightedGrowth"]

UNCOVERED = -1


@dataclass
class WeightedClustering:
    """A disjoint decomposition of a weighted graph.

    Attributes
    ----------
    num_nodes:
        Number of nodes.
    assignment:
        Cluster id of every node.
    centers:
        Center node of every cluster.
    hop_distance:
        Number of growing rounds after which each node was covered
        (0 for centers) — the hop radius is ``hop_distance.max()``.
    weighted_distance:
        Accumulated edge weight along the growth path from the center
        (0.0 for centers) — the weighted radius is ``weighted_distance.max()``.
    growth_rounds:
        Total number of parallel growing rounds executed (parallel depth).
    """

    num_nodes: int
    assignment: np.ndarray
    centers: np.ndarray
    hop_distance: np.ndarray
    weighted_distance: np.ndarray
    growth_rounds: int = 0
    algorithm: str = "weighted-cluster"

    @property
    def num_clusters(self) -> int:
        return int(self.centers.size)

    @property
    def hop_radius(self) -> int:
        """Maximum hop distance (the parallel-depth quantity)."""
        return int(self.hop_distance.max()) if self.hop_distance.size else 0

    @property
    def weighted_radius(self) -> float:
        """Maximum accumulated weighted distance to a center."""
        return float(self.weighted_distance.max()) if self.weighted_distance.size else 0.0

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_clusters).astype(np.int64)

    def members(self, cluster_id: int) -> np.ndarray:
        if not (0 <= cluster_id < self.num_clusters):
            raise IndexError(f"cluster {cluster_id} out of range")
        return np.flatnonzero(self.assignment == cluster_id)

    def validate(self, graph: Optional[WeightedCSRGraph] = None) -> None:
        """Check partition / consistency invariants (AssertionError on failure)."""
        assert self.assignment.shape == (self.num_nodes,)
        if self.num_nodes == 0:
            return
        assert self.assignment.min() >= 0
        assert self.assignment.max() < self.num_clusters
        assert np.unique(self.assignment).size == self.num_clusters
        assert np.all(self.assignment[self.centers] == np.arange(self.num_clusters))
        assert np.all(self.hop_distance[self.centers] == 0)
        assert np.all(self.weighted_distance[self.centers] == 0.0)
        assert np.all(self.hop_distance >= 0)
        assert np.all(self.weighted_distance >= 0.0)
        if graph is not None:
            assert graph.num_nodes == self.num_nodes
            # The growth-path weighted distance upper-bounds the true distance
            # from the node's own cluster center.
            exact = multi_source_dijkstra(graph, list(self.centers))
            assert np.all(self.weighted_distance + 1e-9 >= exact.distances), (
                "growth-path distance must upper-bound the nearest-center distance"
            )

    def summary(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "num_clusters": self.num_clusters,
            "hop_radius": self.hop_radius,
            "weighted_radius": round(self.weighted_radius, 3),
            "growth_rounds": self.growth_rounds,
        }


class WeightedGrowth:
    """Mutable state of hop-synchronous weighted cluster growing."""

    def __init__(self, graph: WeightedCSRGraph) -> None:
        self.graph = graph
        n = graph.num_nodes
        self.assignment = np.full(n, UNCOVERED, dtype=np.int64)
        self.hop_distance = np.full(n, UNCOVERED, dtype=np.int64)
        self.weighted_distance = np.full(n, np.inf)
        self.centers: List[int] = []
        self.frontier = np.zeros(0, dtype=np.int64)
        self.num_covered = 0
        self.num_rounds = 0
        self._mark = 0

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_uncovered(self) -> int:
        return self.num_nodes - self.num_covered

    @property
    def uncovered_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.assignment == UNCOVERED)

    def mark(self) -> None:
        self._mark = self.num_covered

    @property
    def newly_covered_since_mark(self) -> int:
        return self.num_covered - self._mark

    def add_centers(self, nodes: Sequence[int]) -> np.ndarray:
        candidate = np.unique(np.asarray(list(nodes), dtype=np.int64))
        if candidate.size and (candidate.min() < 0 or candidate.max() >= self.num_nodes):
            raise IndexError("center out of range")
        accepted = candidate[self.assignment[candidate] == UNCOVERED]
        if accepted.size == 0:
            return accepted
        new_ids = np.arange(len(self.centers), len(self.centers) + accepted.size, dtype=np.int64)
        self.assignment[accepted] = new_ids
        self.hop_distance[accepted] = 0
        self.weighted_distance[accepted] = 0.0
        self.centers.extend(int(v) for v in accepted)
        self.num_covered += int(accepted.size)
        self.frontier = np.concatenate([self.frontier, accepted])
        return accepted

    def grow_round(self) -> int:
        """One parallel hop-round; uncovered nodes go to the lightest claimant."""
        if self.frontier.size == 0:
            return 0
        src, dst, w = self.graph.neighbor_blocks(self.frontier)
        self.num_rounds += 1
        if dst.size == 0:
            self.frontier = np.zeros(0, dtype=np.int64)
            return 0
        open_mask = self.assignment[dst] == UNCOVERED
        src, dst, w = src[open_mask], dst[open_mask], w[open_mask]
        if dst.size == 0:
            self.frontier = np.zeros(0, dtype=np.int64)
            return 0
        candidate_weight = self.weighted_distance[src] + w
        # For each claimed node keep the claim with the smallest accumulated
        # weighted distance (stable lexsort: primary key node, secondary weight).
        order = np.lexsort((candidate_weight, dst))
        dst_sorted = dst[order]
        src_sorted = src[order]
        weight_sorted = candidate_weight[order]
        first = np.ones(dst_sorted.size, dtype=bool)
        first[1:] = dst_sorted[1:] != dst_sorted[:-1]
        new_nodes = dst_sorted[first]
        parents = src_sorted[first]
        new_weights = weight_sorted[first]
        self.assignment[new_nodes] = self.assignment[parents]
        self.hop_distance[new_nodes] = self.hop_distance[parents] + 1
        self.weighted_distance[new_nodes] = new_weights
        self.num_covered += int(new_nodes.size)
        self.frontier = new_nodes
        return int(new_nodes.size)

    def grow_until(self, target_new_nodes: int) -> int:
        rounds = 0
        while self.newly_covered_since_mark < target_new_nodes:
            if self.grow_round() == 0:
                break
            rounds += 1
        return rounds

    def cover_remaining_as_singletons(self) -> np.ndarray:
        return self.add_centers(self.uncovered_nodes)

    def to_clustering(self, algorithm: str = "weighted-cluster") -> WeightedClustering:
        if self.num_covered != self.num_nodes:
            raise RuntimeError(f"{self.num_uncovered} nodes still uncovered")
        return WeightedClustering(
            num_nodes=self.num_nodes,
            assignment=self.assignment.copy(),
            centers=np.asarray(self.centers, dtype=np.int64),
            hop_distance=self.hop_distance.copy(),
            weighted_distance=np.where(
                np.isfinite(self.weighted_distance), self.weighted_distance, 0.0
            ),
            growth_rounds=self.num_rounds,
            algorithm=algorithm,
        )


def weighted_cluster(
    graph: WeightedCSRGraph,
    tau: int,
    *,
    seed: SeedLike = None,
    max_iterations: Optional[int] = None,
) -> WeightedClustering:
    """Hop-bounded weighted decomposition (weighted CLUSTER(τ)).

    Identical batch-halving structure to Algorithm 1; ties inside a growing
    round are resolved toward the cluster with the smallest accumulated
    weighted distance, so the weighted radius stays controlled while the hop
    radius (= number of growing rounds) controls the parallel depth.
    """
    if tau < 1:
        raise ValueError(f"tau must be a positive integer, got {tau}")
    rng = as_rng(seed)
    n = graph.num_nodes
    growth = WeightedGrowth(graph)
    if n == 0:
        return growth.to_clustering()
    threshold = uncovered_threshold(n, tau)
    limit = max_iterations if max_iterations is not None else int(4 * math.log2(max(2, n))) + 8
    iteration = 0
    while growth.num_uncovered >= threshold and growth.num_uncovered > 0:
        if iteration >= limit:
            break
        uncovered = growth.uncovered_nodes
        probability = selection_probability(n, tau, int(uncovered.size))
        mask = random_subset_mask(int(uncovered.size), probability, rng)
        selected = uncovered[mask]
        if selected.size == 0 and not growth.centers:
            selected = rng.choice(uncovered, size=1)
        growth.mark()
        growth.add_centers(selected)
        growth.grow_until(int(math.ceil(uncovered.size / 2.0)))
        iteration += 1
    growth.cover_remaining_as_singletons()
    return growth.to_clustering()
