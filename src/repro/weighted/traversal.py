"""Weighted traversals: vectorized Dijkstra and hop-bounded relaxation.

Two distance notions coexist in the weighted extension:

* the **weighted distance** (sum of edge weights along a path), computed
  exactly by :func:`dijkstra` / :func:`multi_source_dijkstra` — since the
  substrate unification these run the bucketed
  :func:`repro.graph.kernels.delta_stepping` relaxation (whole-frontier NumPy
  rounds) instead of a per-node binary-heap loop, with bit-identical results;
* the **hop-bounded weighted distance** used by the decomposition: clusters
  grow one *hop* per parallel round (so the number of rounds — the parallel
  depth — equals the hop radius), and within each round a node is claimed by
  the neighbour minimizing the accumulated weighted distance.  The standalone
  :func:`hop_bounded_relaxation` exposes that pattern
  (:func:`repro.graph.kernels.hop_bounded_relaxation`) outside the growth
  engine; it is what the paper's concluding section calls controlling "the
  weighted radius and the hop radius" simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph import kernels
from repro.weighted.wgraph import WeightedCSRGraph

__all__ = [
    "WeightedBFSResult",
    "dijkstra",
    "multi_source_dijkstra",
    "hop_bounded_relaxation",
    "weighted_eccentricity",
    "weighted_double_sweep",
]

UNREACHED = np.inf


@dataclass(frozen=True)
class WeightedBFSResult:
    """Result of a (multi-source) weighted shortest-path computation.

    Attributes
    ----------
    distances:
        float64 array of weighted distances (``inf`` when unreachable).
    sources:
        int64 array; ``sources[v]`` is the source whose shortest-path tree
        contains ``v`` (``-1`` when unreachable).
    hops:
        int64 array of hop counts along the relaxation paths, present only
        for :func:`hop_bounded_relaxation` results (``None`` otherwise).
    """

    distances: np.ndarray
    sources: np.ndarray
    hops: Optional[np.ndarray] = None

    @property
    def reached(self) -> np.ndarray:
        return np.isfinite(self.distances)


def _check_sources(graph: WeightedCSRGraph, sources: Sequence[int]) -> np.ndarray:
    source_array = np.unique(np.asarray(list(sources), dtype=np.int64))
    n = graph.num_nodes
    if source_array.size and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source out of range")
    return source_array


def multi_source_dijkstra(
    graph: WeightedCSRGraph, sources: Sequence[int]
) -> WeightedBFSResult:
    """Exact multi-source weighted shortest paths.

    Runs the shared bucketed delta-stepping kernel: exact Dijkstra distances
    with the hot loop vectorized over whole frontiers.
    """
    source_array = _check_sources(graph, sources)
    dist, owner = kernels.delta_stepping(
        graph.indptr, graph.indices, graph.weights, source_array
    )
    return WeightedBFSResult(distances=dist, sources=owner)


def dijkstra(graph: WeightedCSRGraph, source: int) -> np.ndarray:
    """Single-source weighted shortest-path distances (``inf`` if unreachable)."""
    return multi_source_dijkstra(graph, [source]).distances


def hop_bounded_relaxation(
    graph: WeightedCSRGraph,
    sources: Sequence[int],
    *,
    max_hops: Optional[int] = None,
) -> WeightedBFSResult:
    """Minimum weighted distance over paths with at most ``max_hops`` edges.

    One vectorized Bellman–Ford round per hop — the relaxation pattern of the
    §7 hop-bounded weighted decomposition, where ``max_hops`` caps the
    parallel depth.  With ``max_hops=None`` the rounds run to a fixpoint and
    the distances coincide with :func:`multi_source_dijkstra`.
    """
    source_array = _check_sources(graph, sources)
    if max_hops is not None and max_hops < 0:
        raise ValueError("max_hops must be non-negative")
    dist, owner, hops = kernels.hop_bounded_relaxation(
        graph.indptr, graph.indices, graph.weights, source_array, max_hops=max_hops
    )
    return WeightedBFSResult(distances=dist, sources=owner, hops=hops)


def weighted_eccentricity(graph: WeightedCSRGraph, source: int) -> float:
    """Weighted eccentricity of ``source`` within its component."""
    dist = dijkstra(graph, source)
    finite = dist[np.isfinite(dist)]
    return float(finite.max()) if finite.size else 0.0


def weighted_double_sweep(
    graph: WeightedCSRGraph,
    start: Optional[int] = None,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, int, int]:
    """Weighted double sweep: a lower bound on the weighted diameter.

    Returns ``(lower_bound, endpoint_a, endpoint_b)``.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0, -1, -1
    if start is None:
        start = int(rng.integers(0, n)) if rng is not None else 0
    first = dijkstra(graph, start)
    finite = np.flatnonzero(np.isfinite(first))
    a = int(finite[np.argmax(first[finite])])
    second = dijkstra(graph, a)
    finite2 = np.flatnonzero(np.isfinite(second))
    b = int(finite2[np.argmax(second[finite2])])
    return float(second[b]), a, b
