"""Weighted traversals: Dijkstra and hop-bounded multi-source relaxation.

Two distance notions coexist in the weighted extension:

* the **weighted distance** (sum of edge weights along a path), computed
  exactly by :func:`dijkstra` / :func:`multi_source_dijkstra`;
* the **hop-bounded weighted distance** used by the decomposition: clusters
  grow one *hop* per parallel round (so the number of rounds — the parallel
  depth — equals the hop radius), and within each round a node is claimed by
  the neighbour minimizing the accumulated weighted distance.  This is what
  the paper's concluding section calls controlling "the weighted radius and
  the hop radius" simultaneously.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.weighted.wgraph import WeightedCSRGraph

__all__ = [
    "WeightedBFSResult",
    "dijkstra",
    "multi_source_dijkstra",
    "weighted_eccentricity",
    "weighted_double_sweep",
]

UNREACHED = np.inf


@dataclass(frozen=True)
class WeightedBFSResult:
    """Result of a (multi-source) weighted shortest-path computation.

    Attributes
    ----------
    distances:
        float64 array of weighted distances (``inf`` when unreachable).
    sources:
        int64 array; ``sources[v]`` is the source whose shortest-path tree
        contains ``v`` (``-1`` when unreachable).
    """

    distances: np.ndarray
    sources: np.ndarray

    @property
    def reached(self) -> np.ndarray:
        return np.isfinite(self.distances)


def multi_source_dijkstra(
    graph: WeightedCSRGraph, sources: Sequence[int]
) -> WeightedBFSResult:
    """Exact multi-source weighted shortest paths (binary-heap Dijkstra)."""
    n = graph.num_nodes
    source_array = np.unique(np.asarray(list(sources), dtype=np.int64))
    if source_array.size and (source_array.min() < 0 or source_array.max() >= n):
        raise IndexError("source out of range")
    dist = np.full(n, UNREACHED)
    owner = np.full(n, -1, dtype=np.int64)
    heap = []
    for s in source_array:
        dist[s] = 0.0
        owner[s] = s
        heap.append((0.0, int(s), int(s)))
    heapq.heapify(heap)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u, root = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for pos in range(indptr[u], indptr[u + 1]):
            v = int(indices[pos])
            nd = d + float(weights[pos])
            if nd < dist[v]:
                dist[v] = nd
                owner[v] = root
                heapq.heappush(heap, (nd, v, root))
    return WeightedBFSResult(distances=dist, sources=owner)


def dijkstra(graph: WeightedCSRGraph, source: int) -> np.ndarray:
    """Single-source weighted shortest-path distances (``inf`` if unreachable)."""
    return multi_source_dijkstra(graph, [source]).distances


def weighted_eccentricity(graph: WeightedCSRGraph, source: int) -> float:
    """Weighted eccentricity of ``source`` within its component."""
    dist = dijkstra(graph, source)
    finite = dist[np.isfinite(dist)]
    return float(finite.max()) if finite.size else 0.0


def weighted_double_sweep(
    graph: WeightedCSRGraph,
    start: Optional[int] = None,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, int, int]:
    """Weighted double sweep: a lower bound on the weighted diameter.

    Returns ``(lower_bound, endpoint_a, endpoint_b)``.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0, -1, -1
    if start is None:
        start = int(rng.integers(0, n)) if rng is not None else 0
    first = dijkstra(graph, start)
    finite = np.flatnonzero(np.isfinite(first))
    a = int(finite[np.argmax(first[finite])])
    second = dijkstra(graph, a)
    finite2 = np.flatnonzero(np.isfinite(second))
    b = int(finite2[np.argmax(second[finite2])])
    return float(second[b]), a, b
