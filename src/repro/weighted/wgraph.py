"""Weighted undirected graphs: a thin view over the unified CSR core.

The paper's concluding section identifies the extension to weighted graphs as
the main open direction and sketches "a preliminary decomposition strategy
that, together with the number of clusters and their weighted radius, also
controls their hop radius, which governs the parallel depth of the
computation".  The :mod:`repro.weighted` subpackage implements that extension
on the shared substrate: :class:`WeightedCSRGraph` is a subclass of
:class:`~repro.graph.csr.CSRGraph` that makes the optional ``weights`` array
mandatory and adds weight-flavoured accessors — construction, validation
(including the per-node sorted-``indices`` invariant behind the binary-search
``has_edge`` / ``edge_weight`` lookups, with weights permuted alongside),
min-weight duplicate folding, subgraphs, and IO are all inherited from the
core, and every traversal runs on the shared kernels in
:mod:`repro.graph.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph import kernels
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_node_index

__all__ = ["WeightedCSRGraph", "as_weighted"]


# eq=False keeps the array-aware __eq__/__hash__ inherited from the core
# (the generated tuple comparison would be ambiguous on NumPy arrays).
@dataclass(frozen=True, eq=False)
class WeightedCSRGraph(CSRGraph):
    """An immutable undirected graph with positive edge weights, in CSR form.

    Attributes
    ----------
    indptr / indices:
        Same layout (and validation) as :class:`~repro.graph.csr.CSRGraph`.
    weights:
        ``float64`` array aligned with ``indices``; ``weights[p]`` is the
        weight of the arc stored at position ``p``.  Both copies of an
        undirected edge carry the same weight.  Mandatory for this subclass.
    """

    def __post_init__(self) -> None:
        if self.weights is None:
            raise ValueError("WeightedCSRGraph requires a weights array aligned with indices")
        super().__post_init__()

    @classmethod
    def _weights_required(cls) -> bool:
        return True

    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: "np.ndarray | Sequence[Tuple[int, int]]",
        num_nodes: Optional[int] = None,
        *,
        weights: "np.ndarray | Sequence[float] | None" = None,
    ) -> "WeightedCSRGraph":
        """Build from an ``(m, 2)`` edge array and a length-``m`` weight array.

        Self-loops are dropped; duplicate undirected edges keep the *minimum*
        weight (the only sensible choice for shortest-path purposes).  This is
        the shared :meth:`CSRGraph.from_edges` folding — same signature as the
        base class so polymorphic substrate code can call it positionally —
        with ``weights`` mandatory.
        """
        if weights is None:
            raise ValueError("WeightedCSRGraph.from_edges requires a weights array")
        return super().from_edges(edges, num_nodes=num_nodes, weights=weights)

    @classmethod
    def from_unit_graph(cls, graph: CSRGraph, weight: float = 1.0) -> "WeightedCSRGraph":
        """Lift an unweighted graph to a weighted one with uniform edge weight."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        return cls(
            indptr=graph.indptr.copy(),
            indices=graph.indices.copy(),
            weights=np.full(graph.indices.size, float(weight)),
        )

    @classmethod
    def random_weights(
        cls,
        graph: CSRGraph,
        *,
        low: float = 1.0,
        high: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "WeightedCSRGraph":
        """Assign independent uniform random weights in ``[low, high]`` to a graph's edges."""
        if rng is None:
            rng = np.random.default_rng()
        if not (0 < low <= high):
            raise ValueError("need 0 < low <= high")
        edges = graph.edge_array()
        weights = rng.uniform(low, high, size=edges.shape[0])
        return cls.from_edges(edges, num_nodes=graph.num_nodes, weights=weights)

    # ------------------------------------------------------------------ #
    # ``neighbors`` / ``neighbor_blocks`` are inherited *unchanged*: weighted
    # graphs flow through every unweighted code path (clustering validation,
    # the MR-native drivers, ...), so the base signatures must stay stable.
    # The ``*_with_weights`` variants add the aligned weight column.
    def neighbors_with_weights(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbour_ids, edge_weights)`` of ``node``."""
        idx = check_node_index(node, self.num_nodes)
        lo, hi = self.indptr[idx], self.indptr[idx + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def neighbor_blocks_with_weights(
        self, nodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized gather of ``(sources, targets, weights)`` for a batch of nodes."""
        sources, targets, positions = kernels.gather_neighbors(
            self.indptr, self.indices, nodes
        )
        return sources, targets, self.weights[positions]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the undirected edge ``{u, v}`` (binary search on the
        sorted neighbour slice; raises ``KeyError`` when the edge is absent)."""
        ui = check_node_index(u, self.num_nodes, "u")
        vi = check_node_index(v, self.num_nodes, "v")
        row = self.indices[self.indptr[ui] : self.indptr[ui + 1]]
        pos = np.searchsorted(row, vi)
        if pos >= row.size or row[pos] != vi:
            raise KeyError(f"no edge between {u} and {v}")
        return float(self.weights[self.indptr[ui] + pos])

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        """``(edge_array, weight_array)`` with each undirected edge listed once (u < v).

        Use :meth:`edge_array` for the shape-stable edge list shared with the
        unweighted core.
        """
        edge_array, weight_array = self.edge_list()
        return edge_array, weight_array

    def total_weight(self) -> float:
        """Sum of the weights of all (undirected) edges."""
        return float(self.weights.sum() / 2.0)

    def __repr__(self) -> str:
        return (
            f"WeightedCSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"total_weight={self.total_weight():.1f})"
        )


def as_weighted(graph: CSRGraph, *, unit_weight: float = 1.0) -> WeightedCSRGraph:
    """Coerce any substrate graph to a :class:`WeightedCSRGraph` view.

    A weighted graph is returned unchanged; a core graph that already carries
    weights is re-wrapped sharing its arrays; a purely unweighted graph is
    lifted with uniform ``unit_weight`` edges.
    """
    if isinstance(graph, WeightedCSRGraph):
        return graph
    if graph.weights is not None:
        return WeightedCSRGraph(
            indptr=graph.indptr, indices=graph.indices, weights=graph.weights
        )
    return WeightedCSRGraph.from_unit_graph(graph, weight=unit_weight)
