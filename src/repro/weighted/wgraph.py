"""Weighted undirected graphs in CSR form.

The paper's concluding section identifies the extension to weighted graphs as
the main open direction and sketches "a preliminary decomposition strategy
that, together with the number of clusters and their weighted radius, also
controls their hop radius, which governs the parallel depth of the
computation".  The :mod:`repro.weighted` subpackage implements that extension:
a weighted CSR graph, weighted traversals, the hop-bounded weighted
decomposition, and the weighted k-center / diameter applications built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.validation import check_node_index

__all__ = ["WeightedCSRGraph"]


@dataclass(frozen=True)
class WeightedCSRGraph:
    """An immutable undirected graph with positive edge weights, in CSR form.

    Attributes
    ----------
    indptr / indices:
        Same layout as :class:`~repro.graph.csr.CSRGraph`.
    weights:
        ``float64`` array aligned with ``indices``; ``weights[p]`` is the
        weight of the arc stored at position ``p``.  Both copies of an
        undirected edge carry the same weight.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(np.asarray(self.indptr, dtype=np.int64))
        indices = np.ascontiguousarray(np.asarray(self.indices, dtype=np.int64))
        weights = np.ascontiguousarray(np.asarray(self.weights, dtype=np.float64))
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if weights.shape != indices.shape:
            raise ValueError("weights must be aligned with indices")
        if weights.size and weights.min() <= 0:
            raise ValueError("edge weights must be strictly positive")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain node ids outside [0, num_nodes)")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: "np.ndarray | Sequence[Tuple[int, int]]",
        weights: "np.ndarray | Sequence[float]",
        num_nodes: Optional[int] = None,
    ) -> "WeightedCSRGraph":
        """Build from an ``(m, 2)`` edge array and a length-``m`` weight array.

        Self-loops are dropped; duplicate undirected edges keep the *minimum*
        weight (the only sensible choice for shortest-path purposes).
        """
        edge_array = np.asarray(
            list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64
        ).reshape(-1, 2)
        weight_array = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                                  dtype=np.float64).reshape(-1)
        if edge_array.shape[0] != weight_array.shape[0]:
            raise ValueError("edges and weights must have the same length")
        if weight_array.size and weight_array.min() <= 0:
            raise ValueError("edge weights must be strictly positive")
        if edge_array.size and edge_array.min() < 0:
            raise ValueError("edge endpoints must be non-negative")
        inferred = int(edge_array.max()) + 1 if edge_array.size else 0
        n = inferred if num_nodes is None else int(num_nodes)
        if n < inferred:
            raise ValueError("num_nodes smaller than the largest endpoint + 1")

        mask = edge_array[:, 0] != edge_array[:, 1]
        edge_array, weight_array = edge_array[mask], weight_array[mask]
        if edge_array.size == 0:
            return cls(indptr=np.zeros(n + 1, dtype=np.int64),
                       indices=np.zeros(0, dtype=np.int64),
                       weights=np.zeros(0, dtype=np.float64))

        # Canonicalize, keep the min weight per undirected edge, then mirror.
        canonical = np.sort(edge_array, axis=1)
        keys = canonical[:, 0] * np.int64(n) + canonical[:, 1]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        min_weights = np.full(unique_keys.size, np.inf)
        np.minimum.at(min_weights, inverse, weight_array)
        unique_edges = np.stack([unique_keys // n, unique_keys % n], axis=1)

        both = np.concatenate([unique_edges, unique_edges[:, ::-1]], axis=0)
        both_weights = np.concatenate([min_weights, min_weights])
        order = np.lexsort((both[:, 1], both[:, 0]))
        both, both_weights = both[order], both_weights[order]
        counts = np.bincount(both[:, 0], minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=both[:, 1].copy(), weights=both_weights.copy())

    @classmethod
    def from_unit_graph(cls, graph: CSRGraph, weight: float = 1.0) -> "WeightedCSRGraph":
        """Lift an unweighted graph to a weighted one with uniform edge weight."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        return cls(
            indptr=graph.indptr.copy(),
            indices=graph.indices.copy(),
            weights=np.full(graph.indices.size, float(weight)),
        )

    @classmethod
    def random_weights(
        cls,
        graph: CSRGraph,
        *,
        low: float = 1.0,
        high: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "WeightedCSRGraph":
        """Assign independent uniform random weights in ``[low, high]`` to a graph's edges."""
        if rng is None:
            rng = np.random.default_rng()
        if not (0 < low <= high):
            raise ValueError("need 0 < low <= high")
        edges = graph.edges()
        weights = rng.uniform(low, high, size=edges.shape[0])
        return cls.from_edges(edges, weights, num_nodes=graph.num_nodes)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size // 2)

    @property
    def num_directed_edges(self) -> int:
        return int(self.indices.size)

    def degree(self) -> np.ndarray:
        """Degree (number of incident edges) of every node."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbour_ids, edge_weights)`` of ``node``."""
        idx = check_node_index(node, self.num_nodes)
        lo, hi = self.indptr[idx], self.indptr[idx + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def neighbor_blocks(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized gather of ``(sources, targets, weights)`` for a batch of nodes."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=np.float64)
        starts = self.indptr[nodes]
        degrees = self.indptr[nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=np.float64)
        cumulative = np.cumsum(degrees)
        block_starts = np.repeat(cumulative - degrees, degrees)
        offsets = np.arange(total, dtype=np.int64) - block_starts
        positions = np.repeat(starts, degrees) + offsets
        return np.repeat(nodes, degrees), self.indices[positions], self.weights[positions]

    def unweighted(self) -> CSRGraph:
        """Drop the weights (the hop-metric skeleton of the graph)."""
        return CSRGraph(indptr=self.indptr.copy(), indices=self.indices.copy())

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(edge_array, weight_array)`` with each undirected edge listed once (u < v)."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr))
        mask = src < self.indices
        return np.stack([src[mask], self.indices[mask]], axis=1), self.weights[mask]

    def total_weight(self) -> float:
        """Sum of the weights of all (undirected) edges."""
        return float(self.weights.sum() / 2.0)

    def __repr__(self) -> str:
        return (
            f"WeightedCSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"total_weight={self.total_weight():.1f})"
        )
