"""Weighted-graph extension (the paper's §7 outlook) on the unified substrate.

The weighted stack is no longer a parallel universe: :class:`WeightedCSRGraph`
is a thin subclass of the array-backed :class:`~repro.graph.csr.CSRGraph`
core (shared construction, validation, min-weight edge folding, and IO), and
every weighted traversal runs the shared vectorized kernels of
:mod:`repro.graph.kernels` — :func:`dijkstra` / :func:`multi_source_dijkstra`
are the bucketed :func:`~repro.graph.kernels.delta_stepping` relaxation and
:func:`hop_bounded_relaxation` is the level-synchronous
:func:`~repro.graph.kernels.hop_bounded_relaxation` kernel, the same
relaxation pattern the decomposition's
:class:`~repro.core.growth_engine.MinWeightTieBreak` growth steps use.  On
top sit the hop-bounded weighted decomposition (controlling both the weighted
radius and the hop radius), and the weighted k-center / diameter
applications; ``DecompositionPipeline(graph, method="weighted")`` runs the
whole chain end to end.
"""

from repro.weighted.applications import (
    WeightedDiameterEstimate,
    WeightedKCenterResult,
    build_weighted_quotient,
    estimate_weighted_diameter,
    weighted_gonzalez_kcenter,
    weighted_kcenter,
)
from repro.weighted.decomposition import (
    WeightedClustering,
    WeightedGrowth,
    weighted_cluster,
    weighted_cluster_with_target_clusters,
)
from repro.weighted.traversal import (
    WeightedBFSResult,
    dijkstra,
    hop_bounded_relaxation,
    multi_source_dijkstra,
    weighted_double_sweep,
    weighted_eccentricity,
)
from repro.weighted.wgraph import WeightedCSRGraph, as_weighted

__all__ = [
    "WeightedDiameterEstimate",
    "WeightedKCenterResult",
    "build_weighted_quotient",
    "estimate_weighted_diameter",
    "weighted_gonzalez_kcenter",
    "weighted_kcenter",
    "WeightedClustering",
    "WeightedGrowth",
    "weighted_cluster",
    "weighted_cluster_with_target_clusters",
    "WeightedBFSResult",
    "dijkstra",
    "hop_bounded_relaxation",
    "multi_source_dijkstra",
    "weighted_double_sweep",
    "weighted_eccentricity",
    "WeightedCSRGraph",
    "as_weighted",
]
