"""Weighted-graph extension (the paper's §7 outlook): decomposition controlling
both the weighted radius and the hop radius, plus weighted k-center and
weighted diameter estimation."""

from repro.weighted.applications import (
    WeightedDiameterEstimate,
    WeightedKCenterResult,
    build_weighted_quotient,
    estimate_weighted_diameter,
    weighted_gonzalez_kcenter,
    weighted_kcenter,
)
from repro.weighted.decomposition import WeightedClustering, WeightedGrowth, weighted_cluster
from repro.weighted.traversal import (
    WeightedBFSResult,
    dijkstra,
    multi_source_dijkstra,
    weighted_double_sweep,
    weighted_eccentricity,
)
from repro.weighted.wgraph import WeightedCSRGraph

__all__ = [
    "WeightedDiameterEstimate",
    "WeightedKCenterResult",
    "build_weighted_quotient",
    "estimate_weighted_diameter",
    "weighted_gonzalez_kcenter",
    "weighted_kcenter",
    "WeightedClustering",
    "WeightedGrowth",
    "weighted_cluster",
    "WeightedBFSResult",
    "dijkstra",
    "multi_source_dijkstra",
    "weighted_double_sweep",
    "weighted_eccentricity",
    "WeightedCSRGraph",
]
