"""Applications of the weighted decomposition: k-center and diameter bounds.

These mirror Sections 3.1 and 4 of the paper in the weighted setting enabled
by :mod:`repro.weighted.decomposition`:

* :func:`weighted_kcenter` — weighted graph k-center via the decomposition
  (evaluate with exact multi-source Dijkstra), with
  :func:`weighted_gonzalez_kcenter` as the sequential 2-approximation
  reference;
* :func:`estimate_weighted_diameter` — upper/lower bounds on the weighted
  diameter through the weighted quotient graph
  (``∆_w ≤ 2·weighted_radius + diam(weighted quotient)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.quotient import QuotientGraph, quotient_diameter
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_rng
from repro.weighted.decomposition import WeightedClustering, weighted_cluster
from repro.weighted.traversal import multi_source_dijkstra, weighted_double_sweep
from repro.weighted.wgraph import WeightedCSRGraph

__all__ = [
    "WeightedKCenterResult",
    "weighted_kcenter",
    "weighted_gonzalez_kcenter",
    "build_weighted_quotient",
    "WeightedDiameterEstimate",
    "estimate_weighted_diameter",
]


# --------------------------------------------------------------------------- #
# k-center
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WeightedKCenterResult:
    """A weighted k-center solution (radius measured in weighted distance)."""

    centers: np.ndarray
    assignment: np.ndarray
    distance: np.ndarray
    radius: float
    algorithm: str = "weighted-cluster"

    @property
    def k(self) -> int:
        return int(self.centers.size)


def _evaluate_weighted_centers(
    graph: WeightedCSRGraph, centers: np.ndarray, algorithm: str
) -> WeightedKCenterResult:
    center_array = np.unique(np.asarray(centers, dtype=np.int64))
    result = multi_source_dijkstra(graph, list(center_array))
    distances = result.distances.copy()
    unreachable = ~np.isfinite(distances)
    radius = float(distances[~unreachable].max()) if np.any(~unreachable) else 0.0
    if np.any(unreachable):
        radius = math.inf
    owner = result.sources.copy()
    owner[unreachable] = center_array[0]
    assignment = np.searchsorted(center_array, owner)
    return WeightedKCenterResult(
        centers=center_array,
        assignment=assignment.astype(np.int64),
        distance=distances,
        radius=radius,
        algorithm=algorithm,
    )


def weighted_kcenter(
    graph: WeightedCSRGraph, k: int, *, seed: SeedLike = None, tau: Optional[int] = None
) -> WeightedKCenterResult:
    """Weighted k-center via the hop-bounded weighted decomposition.

    Runs ``weighted_cluster`` with ``τ ≈ k / log² n``, keeps (at most) the
    ``k`` cluster centers whose clusters are largest, and evaluates the
    objective exactly with multi-source Dijkstra.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    if k >= n:
        return _evaluate_weighted_centers(graph, np.arange(n), "weighted-cluster")
    rng = as_rng(seed)
    if tau is None:
        tau = max(1, int(round(k / (math.log2(max(2, n)) ** 2))))
    clustering = weighted_cluster(graph, tau, seed=rng)
    sizes = clustering.cluster_sizes()
    order = np.argsort(sizes)[::-1]
    chosen = clustering.centers[order[: min(k, clustering.num_clusters)]]
    return _evaluate_weighted_centers(graph, chosen, "weighted-cluster")


def weighted_gonzalez_kcenter(
    graph: WeightedCSRGraph, k: int, *, seed: SeedLike = None, first_center: Optional[int] = None
) -> WeightedKCenterResult:
    """Weighted farthest-point traversal (Gonzalez) — 2-approximation reference."""
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= n:
        return _evaluate_weighted_centers(graph, np.arange(n), "weighted-gonzalez")
    rng = as_rng(seed)
    if first_center is None:
        first_center = int(rng.integers(0, n))
    centers = [int(first_center)]
    distances = multi_source_dijkstra(graph, centers).distances
    for _ in range(k - 1):
        unreachable = np.flatnonzero(~np.isfinite(distances))
        if unreachable.size:
            next_center = int(unreachable[0])
        else:
            next_center = int(np.argmax(distances))
        centers.append(next_center)
        new_dist = multi_source_dijkstra(graph, [next_center]).distances
        distances = np.minimum(distances, new_dist)
    return _evaluate_weighted_centers(graph, np.asarray(centers), "weighted-gonzalez")


# --------------------------------------------------------------------------- #
# Diameter
# --------------------------------------------------------------------------- #


def build_weighted_quotient(
    graph: WeightedCSRGraph, clustering: WeightedClustering
) -> QuotientGraph:
    """Weighted quotient graph of a weighted decomposition.

    The quotient edge between clusters ``A`` and ``B`` is weighted with
    ``min over crossing edges (a, b) of
    wdist(a, center_A) + w(a, b) + wdist(b, center_B)`` — a genuine path
    length between the two centers.
    """
    if graph.num_nodes != clustering.num_nodes:
        raise ValueError("graph and clustering refer to different node sets")
    k = clustering.num_clusters
    edges, weights = graph.edges()
    if edges.size == 0:
        return QuotientGraph(graph=CSRGraph.empty(k), weights=np.zeros(0))
    cu = clustering.assignment[edges[:, 0]]
    cv = clustering.assignment[edges[:, 1]]
    cross = cu != cv
    if not np.any(cross):
        return QuotientGraph(graph=CSRGraph.empty(k), weights=np.zeros(0))
    crossing = edges[cross]
    path_len = (
        clustering.weighted_distance[crossing[:, 0]]
        + clustering.weighted_distance[crossing[:, 1]]
        + weights[cross]
    )
    lo = np.minimum(cu[cross], cv[cross])
    hi = np.maximum(cu[cross], cv[cross])
    keys = lo * np.int64(k) + hi
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    min_weight = np.full(unique_keys.size, np.inf)
    np.minimum.at(min_weight, inverse, path_len)
    q_edges = np.stack([unique_keys // k, unique_keys % k], axis=1)
    q_graph = CSRGraph.from_edges(q_edges, num_nodes=k)
    src = np.repeat(np.arange(k, dtype=np.int64), np.diff(q_graph.indptr))
    arc_keys = np.minimum(src, q_graph.indices) * np.int64(k) + np.maximum(src, q_graph.indices)
    positions = np.searchsorted(unique_keys, arc_keys)
    return QuotientGraph(graph=q_graph, weights=min_weight[positions].astype(np.float64))


@dataclass(frozen=True)
class WeightedDiameterEstimate:
    """Bounds on the weighted diameter obtained through the decomposition.

    ``num_quotient_edges`` and the :attr:`radius` alias make this estimate
    interchangeable with the unweighted
    :class:`~repro.core.diameter.DiameterEstimate` in the pipeline summaries
    and MR accounting.
    """

    lower_bound: float
    upper_bound: float
    weighted_radius: float
    hop_radius: int
    num_clusters: int
    clustering: WeightedClustering
    num_quotient_edges: int = 0

    @property
    def radius(self) -> float:
        """Alias of :attr:`weighted_radius` (the pipeline-summary name)."""
        return self.weighted_radius

    def contains(self, true_diameter: float) -> bool:
        return self.lower_bound <= true_diameter + 1e-9 and true_diameter <= self.upper_bound + 1e-9


def estimate_weighted_diameter(
    graph: WeightedCSRGraph,
    *,
    tau: Optional[int] = None,
    seed: SeedLike = None,
    clustering: Optional[WeightedClustering] = None,
) -> WeightedDiameterEstimate:
    """Estimate the weighted diameter of a connected weighted graph.

    * upper bound: ``2 · weighted_radius + diam(weighted quotient)``;
    * lower bound: weighted double sweep (exact Dijkstra from two nodes).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph must be non-empty")
    rng = as_rng(seed)
    if clustering is None:
        if tau is None:
            tau = max(1, int(math.ceil(math.sqrt(n) / max(1.0, math.log2(max(2, n))))))
        clustering = weighted_cluster(graph, tau, seed=rng)
    quotient = build_weighted_quotient(graph, clustering)
    if quotient.num_nodes <= 1 or quotient.num_edges == 0:
        quotient_diam = 0.0
    else:
        quotient_diam = quotient_diameter(quotient)
    upper = 2.0 * clustering.weighted_radius + float(quotient_diam)
    lower, _, _ = weighted_double_sweep(graph, rng=rng)
    return WeightedDiameterEstimate(
        lower_bound=float(lower),
        upper_bound=float(upper),
        weighted_radius=clustering.weighted_radius,
        hop_radius=clustering.hop_radius,
        num_clusters=clustering.num_clusters,
        clustering=clustering,
        num_quotient_edges=quotient.num_edges,
    )
